//! Snapshot publication: immutable query views hot-swapped atomically.
//!
//! The ingest side seals epochs; each seal produces one immutable
//! [`ServeSnapshot`] published through a [`SnapshotSlot`]. Readers obtain
//! an `Arc<ServeSnapshot>` and answer any number of queries against it —
//! the snapshot can never change under them, so a request sees exactly
//! one epoch (never a mix), and the writer never waits for readers.
//!
//! The slot itself is a version-stamped cell: `publish` (writer, rare)
//! stores the new `Arc` and bumps an atomic version; `load` (readers)
//! clones the `Arc` under a mutex held for the duration of a pointer
//! copy. Steady-state readers use a [`SnapshotReader`], which caches the
//! last `Arc` it saw and revalidates with one atomic load — the hot query
//! path takes no lock at all between epoch seals, which at production
//! epoch policies (thousands of events per seal) is effectively always.
//!
//! Publishing is cheap by construction: the record table is sliced out
//! of the epoch's dense counter columns through the Asn-sorted id
//! permutation (no sparse-map rebuild, no sort), and the cumulative flip
//! log is a [`FlipLog`] of per-epoch `Arc`'d chunks shared by every
//! snapshot that retains them — per publish the log costs one chunk
//! pointer per retained epoch, not a deep copy of every entry.

use crate::json::JsonWriter;
use bgp_archive::prelude::{ArchiveSink, SegmentStats};
use bgp_infer::classify::Class;
use bgp_infer::compiled::DenseOutcome;
use bgp_infer::counters::Thresholds;
use bgp_infer::db::DbRecord;
use bgp_stream::epoch::{ClassFlip, EpochSnapshot};
use bgp_stream::pipeline::StreamPipeline;
use obs::journal::JournalKind;
use obs::trace::TraceStore;
use obs::{Histogram, Journal};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One sealed epoch's contribution to the flip log: the epoch id plus
/// the epoch's flip list, shared (`Arc`) with the pipeline snapshot that
/// produced it — appending an epoch to the log copies no entries.
#[derive(Debug, Clone)]
pub struct FlipChunk {
    /// The epoch the flips belong to.
    pub epoch: u64,
    /// The epoch's flips, ascending by ASN.
    pub flips: Arc<Vec<ClassFlip>>,
}

/// The cumulative class-flip log as a sequence of per-epoch `Arc`'d
/// chunks, ascending by epoch. Cloning the log (one per published
/// snapshot) copies chunk pointers, not entries, so sealing cost no
/// longer scales with the retained log size; capping trims whole chunks
/// from the front, which keeps every retained epoch complete — the
/// invariant `flips_since` needs to report completeness honestly.
#[derive(Debug, Clone, Default)]
pub struct FlipLog {
    chunks: Vec<FlipChunk>,
    /// Epoch id of the oldest epoch whose flips are fully retained
    /// (earlier epochs were trimmed by the cap).
    start_epoch: u64,
    /// Total retained entries across chunks.
    len: usize,
}

impl FlipLog {
    /// Retained flip entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no flips are retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Epoch id of the oldest fully retained epoch.
    pub fn start_epoch(&self) -> u64 {
        self.start_epoch
    }

    /// Append one sealed epoch's flips (no-op when the epoch flipped
    /// nothing) and trim whole chunks from the front while more than
    /// `cap` entries are retained.
    fn push_epoch(&mut self, epoch: u64, flips: &Arc<Vec<ClassFlip>>, cap: usize) {
        if !flips.is_empty() {
            self.len += flips.len();
            self.chunks.push(FlipChunk {
                epoch,
                flips: Arc::clone(flips),
            });
        }
        let mut dropped = 0;
        while self.len > cap && dropped < self.chunks.len() {
            self.len -= self.chunks[dropped].flips.len();
            dropped += 1;
        }
        if dropped > 0 {
            self.chunks.drain(..dropped);
            self.start_epoch = self.chunks.first().map_or(epoch + 1, |c| c.epoch);
        }
    }

    /// Rebuild a log from archived per-epoch chunks (the daemon restart
    /// path): each chunk is replayed through the same append-and-trim
    /// step a live publisher would have taken, so the restored log is
    /// identical to one that never went down. `start_floor` is the
    /// oldest epoch whose flips the archive still retains — for an
    /// archive that was never compacted it is 0, matching a fresh log.
    pub fn from_chunks(
        start_floor: u64,
        chunks: impl IntoIterator<Item = (u64, Arc<Vec<ClassFlip>>)>,
        cap: usize,
    ) -> FlipLog {
        let mut log = FlipLog {
            start_epoch: start_floor,
            ..FlipLog::default()
        };
        for (epoch, flips) in chunks {
            log.push_epoch(epoch, &flips, cap);
        }
        log
    }

    /// Flips from epochs `>= since_epoch`, in epoch order, plus whether
    /// the answer is complete (`false` when the requested range starts
    /// before the retained log).
    pub fn flips_since(&self, since_epoch: u64) -> (impl Iterator<Item = (u64, &ClassFlip)>, bool) {
        let start = self.chunks.partition_point(|c| c.epoch < since_epoch);
        let iter = self.chunks[start..]
            .iter()
            .flat_map(|c| c.flips.iter().map(move |f| (c.epoch, f)));
        (iter, since_epoch >= self.start_epoch)
    }

    /// Number of retained flips from epochs `>= since_epoch` — computed
    /// from the per-chunk lengths, no entry iteration or allocation (the
    /// `/v1/flips` envelope writes the count before the entries).
    pub fn count_since(&self, since_epoch: u64) -> usize {
        let start = self.chunks.partition_point(|c| c.epoch < since_epoch);
        self.chunks[start..].iter().map(|c| c.flips.len()).sum()
    }

    /// Iterate every retained `(epoch, flip)` pair in epoch order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &ClassFlip)> {
        self.chunks
            .iter()
            .flat_map(|c| c.flips.iter().map(move |f| (c.epoch, f)))
    }
}

/// Ingest-side counters frozen into a snapshot at publish time.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Events ingested since the stream began.
    pub total_events: u64,
    /// Unique tuples stored across all shards.
    pub unique_tuples: usize,
    /// Dedup hits observed.
    pub duplicates: u64,
    /// Stored-tuple count per shard.
    pub shard_loads: Vec<usize>,
    /// Distinct ASNs in the workspace-shared interner (one id space for
    /// all shards).
    pub interned_asns: usize,
    /// Total path positions in the shard id arenas.
    pub arena_hops: usize,
    /// Steps of the latest seal's recount that were replayed
    /// incrementally (vs recounted from scratch).
    pub replayed_steps: u64,
    /// Total recount steps of the latest seal.
    pub total_steps: u64,
}

/// One immutable, queryable view of the classification database.
///
/// Everything a query needs is precomputed at publish time (sorted record
/// table, cumulative flip log), so serving threads only ever binary-search
/// and format — no locks, no shared mutable state.
#[derive(Debug)]
pub struct ServeSnapshot {
    /// The sealed stream epoch behind this view; `None` before the first
    /// seal (the "version 0" boot snapshot serves empty answers).
    pub epoch: Option<Arc<EpochSnapshot>>,
    /// Per-AS records, sorted by ASN (the `db::records` table), sliced
    /// from the epoch's dense counter columns at publish time.
    pub records: Vec<DbRecord>,
    /// Thresholds the records were classified under.
    pub thresholds: Thresholds,
    /// Cumulative flip log: `Arc`'d per-epoch chunks shared across
    /// snapshots.
    pub flip_log: FlipLog,
    /// Ingest statistics at publish time.
    pub ingest: IngestStats,
}

impl ServeSnapshot {
    /// The boot snapshot: version 0, nothing classified yet.
    pub fn empty(thresholds: Thresholds) -> Self {
        ServeSnapshot {
            epoch: None,
            records: Vec::new(),
            thresholds,
            flip_log: FlipLog::default(),
            ingest: IngestStats::default(),
        }
    }

    /// Monotone publication version: 0 before the first seal, then the
    /// sealed epoch's `version` (`epoch + 1`).
    pub fn version(&self) -> u64 {
        self.epoch.as_ref().map_or(0, |e| e.version)
    }

    /// The sealed epoch id, or `None` before the first seal.
    pub fn epoch_id(&self) -> Option<u64> {
        self.epoch.as_ref().map(|e| e.epoch)
    }

    /// Point lookup, `None` for an AS this epoch never counted.
    pub fn record_of(&self, asn: bgp_types::asn::Asn) -> Option<&DbRecord> {
        self.records
            .binary_search_by_key(&asn, |r| r.asn)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Classification of one AS ([`Class::NONE`] when never counted).
    pub fn class_of(&self, asn: bgp_types::asn::Asn) -> Class {
        self.record_of(asn).map_or(Class::NONE, |r| r.class)
    }

    /// Flips from epochs `>= since_epoch`, in epoch order. The boolean is
    /// `false` when the requested range starts before the retained log
    /// (the answer is then truncated at [`FlipLog::start_epoch`]).
    pub fn flips_since(&self, since_epoch: u64) -> (impl Iterator<Item = (u64, &ClassFlip)>, bool) {
        self.flip_log.flips_since(since_epoch)
    }

    /// Re-classify every record under different thresholds without
    /// re-counting — the same approximation
    /// [`InferenceOutcome::reclassify`](bgp_infer::engine::InferenceOutcome::reclassify)
    /// documents, evaluated against this immutable snapshot.
    pub fn reclassify(&self, th: &Thresholds) -> impl Iterator<Item = (&DbRecord, Class)> + '_ {
        let th = *th;
        self.records
            .iter()
            .map(move |r| (r, r.counters.classify(&th)))
    }
}

/// Slice the per-AS record table straight out of a dense counter column
/// through the Asn-sorted id permutation — no sparse-map rebuild, no
/// sort. `classes` must be the seal-time classification of exactly the
/// non-zero counters in `by_asn` order (which is what both the live
/// sealer and the archive produce). Shared by the live publisher and
/// the archive restore path so a restarted daemon builds byte-identical
/// tables.
pub(crate) fn slice_records(
    dense: &DenseOutcome,
    classes: &[(bgp_types::asn::Asn, Class)],
) -> Vec<DbRecord> {
    let mut records = Vec::with_capacity(classes.len());
    let mut next_class = classes.iter();
    for &(asn, id) in dense.by_asn.iter() {
        let counters = dense.counters[id as usize];
        if counters.is_zero() {
            continue;
        }
        let &(casn, class) = next_class.next().expect("classes cover counted ids");
        debug_assert_eq!(casn, asn);
        records.push(DbRecord {
            asn,
            class,
            counters,
        });
    }
    records
}

/// Records for an epoch whose counter column is gone (compacted in the
/// pipeline or dropped from the archive's retention window): classes
/// survive, counters serve as zero.
pub(crate) fn zeroed_records(classes: &[(bgp_types::asn::Asn, Class)]) -> Vec<DbRecord> {
    classes
        .iter()
        .map(|&(asn, class)| DbRecord {
            asn,
            class,
            counters: Default::default(),
        })
        .collect()
}

/// The record fields, written into an already-open object — the single
/// definition of the wire shape every endpoint shares.
fn write_record_fields(w: &mut JsonWriter, r: &DbRecord) {
    w.field_u64("asn", r.asn.0 as u64);
    w.field_str("class", &r.class.as_str());
    w.begin_obj_field("counters");
    w.field_u64("t", r.counters.t);
    w.field_u64("s", r.counters.s);
    w.field_u64("f", r.counters.f);
    w.field_u64("c", r.counters.c);
    w.end_obj();
}

/// Append one record as a JSON array element.
pub fn write_record(w: &mut JsonWriter, r: &DbRecord) {
    w.begin_obj();
    write_record_fields(w, r);
    w.end_obj();
}

/// Append one record as a named object field (`"name":{...}`).
pub fn write_record_field(w: &mut JsonWriter, name: &str, r: &DbRecord) {
    w.begin_obj_field(name);
    write_record_fields(w, r);
    w.end_obj();
}

/// The atomic publication slot: one writer, any number of readers.
pub struct SnapshotSlot {
    /// Bumped to the snapshot's version on every publish. Readers use it
    /// to revalidate cached `Arc`s without locking.
    version: AtomicU64,
    slot: Mutex<Arc<ServeSnapshot>>,
    /// Callbacks fired after every publish — the HTTP transport
    /// registers its reactor waker here so parked long-poll clients
    /// are resumed the moment a new epoch lands.
    wakers: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for SnapshotSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotSlot")
            .field("version", &self.version)
            .field("slot", &self.slot)
            .field(
                "wakers",
                &self
                    .wakers
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len(),
            )
            .finish()
    }
}

impl SnapshotSlot {
    /// A slot holding the boot snapshot.
    pub fn new(thresholds: Thresholds) -> Self {
        SnapshotSlot {
            version: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(ServeSnapshot::empty(thresholds))),
            wakers: Mutex::new(Vec::new()),
        }
    }

    /// Register a callback invoked (outside the slot lock) after every
    /// successful publish.
    pub fn register_waker(&self, waker: Arc<dyn Fn() + Send + Sync>) {
        self.wakers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(waker);
    }

    /// Current publication version (lock-free).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Swap in a new snapshot. Panics if the version does not advance —
    /// publications must be monotone or readers could observe time moving
    /// backwards between requests.
    pub fn publish(&self, snapshot: Arc<ServeSnapshot>) {
        let new_version = snapshot.version();
        // Recover a poisoned lock rather than panic: the slot only ever
        // holds a complete `Arc` swap, so a panic elsewhere (e.g. the
        // monotonicity assert below) never leaves a torn value behind.
        let mut guard = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let old_version = guard.version();
        assert!(
            new_version > old_version,
            "snapshot version must advance: {old_version} -> {new_version}"
        );
        *guard = snapshot;
        // Publish the version while still holding the lock so a reader
        // that sees the new version always finds the new snapshot.
        self.version.store(new_version, Ordering::Release);
        drop(guard);
        // Wake listeners outside the lock: a waker that triggers a
        // reader must find the new snapshot already visible.
        let wakers = self
            .wakers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for waker in wakers.iter() {
            waker();
        }
    }

    /// The current snapshot (brief lock, pointer-copy only).
    pub fn load(&self) -> Arc<ServeSnapshot> {
        self.slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// A caching reader handle for a serving thread.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader {
        SnapshotReader {
            slot: Arc::clone(self),
            cached: self.load(),
        }
    }
}

/// A per-thread reader: revalidates its cached snapshot with one atomic
/// load and only touches the slot mutex when an epoch actually sealed.
#[derive(Debug)]
pub struct SnapshotReader {
    slot: Arc<SnapshotSlot>,
    cached: Arc<ServeSnapshot>,
}

impl SnapshotReader {
    /// The slot this reader watches.
    pub fn slot(&self) -> &Arc<SnapshotSlot> {
        &self.slot
    }

    /// The freshest snapshot (lock-free when nothing sealed since the
    /// last call).
    pub fn current(&mut self) -> &Arc<ServeSnapshot> {
        if self.slot.version() != self.cached.version() {
            self.cached = self.slot.load();
        }
        &self.cached
    }
}

/// Builds `ServeSnapshot`s out of a pipeline's newly sealed epochs and
/// publishes them in order — the bridge the ingest driver (and tests)
/// drive after every pushed batch.
#[derive(Debug)]
pub struct Publisher {
    slot: Arc<SnapshotSlot>,
    /// Pipeline snapshots already published.
    published: usize,
    /// Cumulative flip log carried across publications (chunk-shared).
    log: FlipLog,
    /// Retain at most this many flip entries (oldest epochs trimmed
    /// first, whole).
    flip_log_cap: usize,
    /// Seal/counting duration sink (the daemon's Prometheus counters).
    metrics: Option<Arc<crate::metrics::Metrics>>,
    /// Durable epoch tap: every newly published epoch is also queued
    /// here (one `Arc` clone + one queue push — the disk write happens
    /// on the sink's own thread). Shared (`Arc`) so a supervised driver
    /// can keep the sink alive across publisher respawns.
    archive: Option<Arc<ArchiveSink>>,
    /// Epochs `<=` this id were already archived and republished at boot
    /// by the restore path; the deterministic-feed backfill re-seals
    /// them, but they must not reach the slot (versions would move
    /// backwards), the flip log (already seeded), or the sink (already
    /// committed).
    resume_skip: Option<u64>,
    /// Publish-stage histogram + journal, resolved once from the global
    /// registry.
    publish_hist: Arc<Histogram>,
    journal: Arc<Journal>,
    /// Per-epoch provenance traces: each publication appends a
    /// `"publish"` stage to its epoch's timeline.
    traces: Option<Arc<TraceStore>>,
}

impl Publisher {
    /// A publisher feeding `slot`, retaining at most `flip_log_cap` flips.
    pub fn new(slot: Arc<SnapshotSlot>, flip_log_cap: usize) -> Self {
        let reg = obs::global();
        Publisher {
            slot,
            published: 0,
            log: FlipLog::default(),
            flip_log_cap,
            metrics: None,
            archive: None,
            resume_skip: None,
            publish_hist: reg.histogram(
                "bgp_serve_publish_duration_seconds",
                "Wall time to build and publish one ServeSnapshot",
                &[],
            ),
            journal: Arc::clone(reg.journal()),
            traces: None,
        }
    }

    /// Report each published epoch's seal/counting durations to
    /// `metrics`.
    pub fn with_metrics(mut self, metrics: Arc<crate::metrics::Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Tap every newly published epoch into `sink` for durable archiving.
    pub fn with_archive(mut self, sink: Arc<ArchiveSink>) -> Self {
        self.archive = Some(sink);
        self
    }

    /// Record each epoch's `"publish"` stage into `traces`.
    pub fn with_traces(mut self, traces: Arc<TraceStore>) -> Self {
        self.traces = Some(traces);
        self
    }

    /// Resume after a restart that republished `restored` from the
    /// archive: seed the flip log from the restored snapshot and skip
    /// every backfill epoch at or below its id. Call before the first
    /// `sync`.
    pub fn resume_from(&mut self, restored: &ServeSnapshot) {
        self.resume_skip = restored.epoch_id();
        self.log = restored.flip_log.clone();
    }

    /// Surrender the archive sink handle (the driver calls this after
    /// the feed drains, before unwrapping the `Arc` to flush and join
    /// the archiving thread).
    pub fn take_archive(&mut self) -> Option<Arc<ArchiveSink>> {
        self.archive.take()
    }

    /// The slot this publisher feeds.
    pub fn slot(&self) -> &Arc<SnapshotSlot> {
        &self.slot
    }

    /// Publish every epoch the pipeline sealed since the last call, one
    /// `ServeSnapshot` per epoch (readers may observe each version, so
    /// none are skipped). Returns how many were published — on a
    /// restart, backfill epochs the archive already holds are re-sealed
    /// by the deterministic feed but not re-published, and don't count.
    pub fn sync(&mut self, pipeline: &StreamPipeline) -> usize {
        let snapshots = pipeline.snapshots();
        let new = &snapshots[self.published.min(snapshots.len())..];
        let mut count = 0;
        for sealed in new {
            if self.publish_epoch(pipeline, Arc::clone(sealed)) {
                count += 1;
            }
        }
        self.published = snapshots.len();
        count
    }

    fn publish_epoch(&mut self, pipeline: &StreamPipeline, sealed: Arc<EpochSnapshot>) -> bool {
        if self.resume_skip.is_some_and(|skip| sealed.epoch <= skip) {
            return false;
        }
        let t_publish = Instant::now();
        self.log
            .push_epoch(sealed.epoch, &sealed.flips, self.flip_log_cap);
        if let Some(metrics) = &self.metrics {
            metrics.observe_seal(sealed.seal_nanos, sealed.count_nanos);
        }
        let records = match &sealed.dense {
            // The normal path: slice the record table straight out of the
            // dense counter columns through the Asn-sorted permutation.
            Some(dense) => slice_records(dense, &sealed.classes),
            // Compacted epochs keep classes but not counters; serve
            // them with zeroed counters rather than failing. The
            // driver always publishes an epoch before it can be
            // compacted, so this is a fallback, not the normal path.
            None => zeroed_records(&sealed.classes),
        };
        let (replayed_steps, total_steps) = pipeline.last_replay();
        let snapshot = ServeSnapshot {
            records,
            thresholds: pipeline.config().thresholds,
            flip_log: self.log.clone(),
            ingest: IngestStats {
                total_events: sealed.total_events,
                unique_tuples: sealed.unique_tuples,
                duplicates: pipeline.duplicates(),
                shard_loads: pipeline.shard_loads(),
                interned_asns: pipeline.interned_asns(),
                arena_hops: pipeline.arena_hops(),
                replayed_steps: replayed_steps as u64,
                total_steps: total_steps as u64,
            },
            epoch: Some(Arc::clone(&sealed)),
        };
        let snapshot = Arc::new(snapshot);
        self.slot.publish(Arc::clone(&snapshot));
        // Trace the publish before handing the epoch to the archive
        // sink: the sink's thread encodes the trace frame, so the
        // `"publish"` stage must already be in the store by then.
        if let Some(traces) = &self.traces {
            traces.record(
                sealed.epoch,
                "publish",
                t_publish.elapsed().as_nanos() as u64,
                &[
                    ("records", snapshot.records.len() as u64),
                    ("version", snapshot.version()),
                ],
            );
        }
        if let Some(sink) = &self.archive {
            sink.submit(
                sealed,
                SegmentStats {
                    duplicates: snapshot.ingest.duplicates,
                    interned_asns: snapshot.ingest.interned_asns as u64,
                    arena_hops: snapshot.ingest.arena_hops as u64,
                    replayed_steps: snapshot.ingest.replayed_steps,
                    total_steps: snapshot.ingest.total_steps,
                    shard_loads: snapshot
                        .ingest
                        .shard_loads
                        .iter()
                        .map(|&n| n as u64)
                        .collect(),
                },
            );
        }
        let nanos = t_publish.elapsed().as_nanos() as u64;
        self.publish_hist.record(nanos);
        self.journal.push(
            JournalKind::Span,
            "publish",
            nanos,
            format!(
                "epoch={} version={} records={}",
                snapshot.epoch_id().unwrap_or(0),
                snapshot.version(),
                snapshot.records.len()
            ),
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_stream::epoch::EpochPolicy;
    use bgp_stream::ingest::StreamEvent;
    use bgp_stream::pipeline::StreamConfig;
    use bgp_types::prelude::*;

    fn tag_tuple(p: &[u32], uppers: &[u32]) -> PathCommTuple {
        PathCommTuple::new(
            path(p),
            CommunitySet::from_iter(uppers.iter().map(|&u| AnyCommunity::tag_for(Asn(u), 100))),
        )
    }

    fn pipeline(every: u64) -> StreamPipeline {
        StreamPipeline::new(StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(every),
            ..Default::default()
        })
    }

    #[test]
    fn boot_snapshot_is_version_zero() {
        let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
        let snap = slot.load();
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.epoch_id(), None);
        assert!(snap.records.is_empty());
        assert_eq!(snap.class_of(Asn(1)), Class::NONE);
    }

    #[test]
    fn publisher_tracks_sealed_epochs() {
        let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
        let mut publisher = Publisher::new(Arc::clone(&slot), 1024);
        let mut pipe = pipeline(2);

        for i in 0..4u64 {
            pipe.push(StreamEvent::new(i, tag_tuple(&[1, 9], &[1])));
        }
        assert_eq!(publisher.sync(&pipe), 2);
        let snap = slot.load();
        assert_eq!(snap.version(), 2);
        assert_eq!(snap.epoch_id(), Some(1));
        assert_eq!(snap.class_of(Asn(1)).tagging.code(), 't');
        // Records match the db::records oracle on the same outcome.
        let oracle = bgp_infer::db::records(snap.epoch.as_ref().unwrap().outcome().unwrap());
        assert_eq!(snap.records, oracle);
        // Nothing new -> no publish.
        assert_eq!(publisher.sync(&pipe), 0);
    }

    #[test]
    fn reader_revalidates_on_new_version() {
        let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
        let mut publisher = Publisher::new(Arc::clone(&slot), 1024);
        let mut reader = slot.reader();
        assert_eq!(reader.current().version(), 0);

        let mut pipe = pipeline(1);
        pipe.push(StreamEvent::new(0, tag_tuple(&[1, 9], &[1])));
        publisher.sync(&pipe);
        assert_eq!(reader.current().version(), 1);
        pipe.push(StreamEvent::new(1, tag_tuple(&[2, 9], &[])));
        publisher.sync(&pipe);
        assert_eq!(reader.current().version(), 2);
    }

    #[test]
    fn flip_log_accumulates_and_caps() {
        let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
        let mut publisher = Publisher::new(Arc::clone(&slot), 2);
        let mut pipe = pipeline(1);
        // Each epoch flips AS1: t.. then u.. alternating evidence.
        pipe.push(StreamEvent::new(0, tag_tuple(&[1, 9], &[1])));
        pipe.push(StreamEvent::new(1, tag_tuple(&[1, 8], &[])));
        pipe.push(StreamEvent::new(2, tag_tuple(&[2, 9], &[2])));
        publisher.sync(&pipe);
        let snap = slot.load();
        assert!(snap.flip_log.len() <= 2, "cap respected");
        let (all, complete) = snap.flips_since(0);
        assert_eq!(all.count(), snap.flip_log.len());
        assert!(!complete, "front of the log was trimmed");
        let (recent, complete) = snap.flips_since(snap.flip_log.start_epoch());
        assert!(complete);
        assert_eq!(recent.count(), snap.flip_log.len());
    }

    #[test]
    #[should_panic(expected = "version must advance")]
    fn non_monotone_publish_panics() {
        // Empty snapshots are version 0 and the slot boots at version 0,
        // so re-publishing the boot view fails the strict-advance check.
        let slot = SnapshotSlot::new(Thresholds::default());
        slot.publish(Arc::new(ServeSnapshot::empty(Thresholds::default())));
    }

    #[test]
    fn trim_extends_to_epoch_boundary() {
        let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
        let mut publisher = Publisher::new(Arc::clone(&slot), 2);
        let mut pipe = pipeline(1);
        // One epoch sealing three flips at once: a naive cap trim would
        // keep 2 of them and claim the epoch complete.
        pipe.push(StreamEvent::new(0, tag_tuple(&[1, 5, 9], &[1, 5])));
        publisher.sync(&pipe);
        let snap = slot.load();
        let (_, complete) = snap.flips_since(0);
        if snap.flip_log.is_empty() {
            // The whole epoch was trimmed: since_epoch=0 must NOT claim
            // completeness, the next epoch is the first complete one.
            assert!(!complete);
            assert_eq!(snap.flip_log.start_epoch(), 1);
        } else {
            // Nothing trimmed mid-epoch: every retained epoch is whole.
            let first_epoch = snap.flip_log.iter().next().unwrap().0;
            assert!(
                snap.flip_log
                    .iter()
                    .filter(|&(e, _)| e == first_epoch)
                    .count()
                    >= 1
            );
            assert_eq!(snap.flip_log.start_epoch(), first_epoch);
        }
    }

    fn flip(asn: u32) -> ClassFlip {
        ClassFlip {
            asn: Asn(asn),
            from: Class::NONE,
            to: "tf".parse().unwrap(),
        }
    }

    fn chunk(asns: &[u32]) -> Arc<Vec<ClassFlip>> {
        Arc::new(asns.iter().map(|&a| flip(a)).collect())
    }

    #[test]
    fn trim_lands_exactly_on_chunk_boundary() {
        // cap=4, chunks of 2: the trim removes exactly one whole chunk
        // and start_epoch advances to the next retained chunk's epoch.
        let log = FlipLog::from_chunks(
            0,
            [
                (0, chunk(&[1, 2])),
                (1, chunk(&[3, 4])),
                (2, chunk(&[5, 6])),
            ],
            4,
        );
        assert_eq!(log.len(), 4);
        assert_eq!(log.start_epoch(), 1);
        let (iter, complete) = log.flips_since(1);
        assert!(complete);
        assert_eq!(iter.count(), 4);
        let (_, complete) = log.flips_since(0);
        assert!(!complete, "epoch 0 was trimmed");
    }

    #[test]
    fn since_epoch_older_than_start_after_trim_is_incomplete_but_served() {
        let log = FlipLog::from_chunks(
            5,
            [(5, chunk(&[1])), (6, chunk(&[2, 3])), (7, chunk(&[4, 5]))],
            4,
        );
        // Epoch 5 trimmed (5 entries > cap 4): start is 6, len 4.
        assert_eq!(log.start_epoch(), 6);
        assert_eq!(log.len(), 4);
        // Asking for an epoch older than anything ever retained (3) and
        // older than start after trimming (5): both incomplete, both
        // still answer with everything retained.
        for since in [3, 5] {
            let (iter, complete) = log.flips_since(since);
            assert!(!complete, "since={since}");
            assert_eq!(iter.count(), 4, "since={since}");
            assert_eq!(log.count_since(since), 4);
        }
        let (_, complete) = log.flips_since(6);
        assert!(complete);
    }

    #[test]
    fn empty_epoch_chunks_are_noops_for_retention_and_start() {
        // Epochs that flipped nothing produce empty chunks; replaying
        // them must neither retain anything nor move start_epoch.
        let log = FlipLog::from_chunks(
            0,
            [
                (0, chunk(&[])),
                (1, chunk(&[1, 2])),
                (2, chunk(&[])),
                (3, chunk(&[3])),
                (4, chunk(&[])),
            ],
            100,
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.start_epoch(), 0, "nothing trimmed");
        let (iter, complete) = log.flips_since(0);
        assert!(complete);
        let got: Vec<u64> = iter.map(|(e, _)| e).collect();
        assert_eq!(got, vec![1, 1, 3]);
        // An empty chunk right at the cap boundary: trimming is driven
        // by entry counts, so an all-empty log never trims.
        let empty = FlipLog::from_chunks(0, [(0, chunk(&[])), (1, chunk(&[]))], 0);
        assert!(empty.is_empty());
        assert_eq!(empty.start_epoch(), 0);
    }

    #[test]
    fn restored_log_matches_live_replay() {
        // from_chunks over the exact chunk sequence a live publisher
        // consumed must land on the same (len, start_epoch, contents).
        let chunks: Vec<(u64, Arc<Vec<ClassFlip>>)> = (0..10u64)
            .map(|e| {
                let n = (e % 3) as u32;
                (
                    e,
                    chunk(&(0..n).map(|i| 100 + e as u32 * 10 + i).collect::<Vec<_>>()),
                )
            })
            .collect();
        let cap = 5;
        let mut live = FlipLog::default();
        for (e, fl) in &chunks {
            live.push_epoch(*e, fl, cap);
        }
        let restored = FlipLog::from_chunks(0, chunks.clone(), cap);
        assert_eq!(restored.len(), live.len());
        assert_eq!(restored.start_epoch(), live.start_epoch());
        let a: Vec<(u64, ClassFlip)> = live.iter().map(|(e, f)| (e, *f)).collect();
        let b: Vec<(u64, ClassFlip)> = restored.iter().map(|(e, f)| (e, *f)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn per_seal_publication_survives_compaction() {
        // With compact_history, sealing epoch N strips epoch N-1's
        // counter store in the pipeline. A publisher that synced after
        // every seal must keep serving epoch N-1's real counters
        // (compaction copy-on-writes the shared Arc).
        let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
        let mut publisher = Publisher::new(Arc::clone(&slot), 1024);
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 1,
            epoch: EpochPolicy::every_events(1),
            compact_history: true,
            ..Default::default()
        });

        pipe.push(StreamEvent::new(0, tag_tuple(&[1, 9], &[1])));
        publisher.sync(&pipe);
        let first = slot.load();
        assert_eq!(first.version(), 1);
        assert!(first.records.iter().any(|r| !r.counters.is_zero()));

        // The next seal compacts epoch 0 inside the pipeline...
        pipe.push(StreamEvent::new(1, tag_tuple(&[2, 9], &[2])));
        publisher.sync(&pipe);
        assert!(
            pipe.snapshots()[0].outcome().is_none(),
            "pipeline history compacted"
        );
        // ...but the published epoch-0 snapshot keeps its full state.
        assert!(first.epoch.as_ref().unwrap().outcome().is_some());
        assert!(first.records.iter().any(|r| !r.counters.is_zero()));
        // And the live snapshot moved on with real counters too.
        let second = slot.load();
        assert_eq!(second.version(), 2);
        assert!(second.records.iter().any(|r| !r.counters.is_zero()));
    }

    #[test]
    fn reclassify_is_pure_over_records() {
        let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
        let mut publisher = Publisher::new(Arc::clone(&slot), 64);
        let mut pipe = pipeline(4);
        for i in 0..4u64 {
            pipe.push(StreamEvent::new(i, tag_tuple(&[1, 5, 9], &[1, 5])));
        }
        publisher.sync(&pipe);
        let snap = slot.load();
        let relaxed = Thresholds::uniform(0.5);
        let reclassified: Vec<Class> = snap.reclassify(&relaxed).map(|(_, c)| c).collect();
        let oracle = snap
            .epoch
            .as_ref()
            .unwrap()
            .outcome()
            .unwrap()
            .reclassify(relaxed);
        let oracle_classes: Vec<Class> = oracle.into_iter().map(|(_, c)| c).collect();
        assert_eq!(reclassified, oracle_classes);
    }
}
