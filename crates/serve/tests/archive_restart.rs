//! Restart fidelity and crash safety for `bgp-served --archive`,
//! exercised end to end through the query API.
//!
//! * A daemon restarted from its archive must answer a fixed request
//!   sequence **byte-for-byte** identically to the daemon that never
//!   stopped — before the feed backfill even begins — and the restore
//!   itself must be a milliseconds affair, not a feed replay.
//! * Time-travel answers (`?epoch=N`, `/v1/history`) must match an
//!   independently-run batch pipeline, epoch by epoch.
//! * A crash-truncated archive (any byte offset in the tail segment,
//!   with or without a rolled-back manifest) must recover on open and
//!   converge back to the never-crashed state once the deterministic
//!   feed backfills.

use bgp_archive::prelude::*;
use bgp_infer::counters::Thresholds;
use bgp_serve::driver::spawn_ingest_archived;
use bgp_serve::prelude::*;
use bgp_stream::epoch::EpochPolicy;
use bgp_stream::ingest::StreamEvent;
use bgp_stream::pipeline::{StreamConfig, StreamPipeline};
use bgp_types::prelude::*;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bgp-restart-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

// ----------------------------------------------------------- the world

const EPOCH_EVENTS: u64 = 16;
const EVENTS: u64 = 70; // 4 full epochs + a trailing partial → 5 epochs

/// Deterministic feed: rotating origins keep growing the interner, a
/// small tagger pool accumulates evidence (and flips early on), every
/// 11th tuple is untagged so silent/contradictory classes appear too.
fn world_events() -> Vec<StreamEvent> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..EVENTS)
        .map(|i| {
            let r = rng();
            let origin = 9_000 + (i / 5) as u32;
            let tagger = 64_496 + (r % 7) as u32;
            let upstream = if r % 4 == 0 {
                70_000 + (r % 5) as u32 // 32-bit map path
            } else {
                100 + (r % 9) as u32
            };
            let comms = if r % 11 == 0 {
                CommunitySet::from_iter([])
            } else {
                CommunitySet::from_iter([AnyCommunity::tag_for(Asn(tagger), (r % 900) as u32)])
            };
            let tuple = PathCommTuple::new(path(&[upstream, tagger, origin]), comms);
            StreamEvent::new(10 * i + 1, tuple)
        })
        .collect()
}

fn cfg() -> DriverConfig {
    DriverConfig {
        stream: StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(EPOCH_EVENTS),
            ..Default::default()
        },
        batch: 7,
        flip_log_cap: 4096,
        ..Default::default()
    }
}

// ----------------------------------------------------- the API client

/// Answer one request through [`Api::handle`] directly (no TCP): the
/// byte-identity claim is about the handler's output, and the transport
/// is covered by `http_integration.rs`.
fn get(api: &Api, target: &str) -> (u16, String) {
    let (path, raw_query) = target.split_once('?').unwrap_or((target, ""));
    let query = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (k.to_string(), v.to_string())
        })
        .collect();
    let response = api.handle(&Request {
        method: "GET".to_string(),
        path: path.to_string(),
        query,
    });
    (response.status, response.body)
}

/// The fixed request sequence both daemons answer. `/v1/stats` goes
/// last: its `requests_total` depends on everything before it, so the
/// sequences must be identical — they are, by construction.
fn request_sequence(asns: &[u32]) -> Vec<String> {
    let mut seq = vec![
        "/healthz".to_string(),
        "/v1/classes".to_string(),
        "/v1/flips?since_epoch=0".to_string(),
        "/v1/flips?since_epoch=3".to_string(),
        "/v1/epochs".to_string(),
        "/v1/reclassify?uniform=0.8".to_string(),
    ];
    for asn in asns.iter().take(8) {
        seq.push(format!("/v1/class/{asn}"));
        seq.push(format!("/v1/class/{asn}?epoch=2"));
        seq.push(format!("/v1/history/{asn}"));
    }
    seq.push("/v1/stats".to_string());
    seq
}

/// Run the archived ingest to completion and return the served state.
fn run_archived(
    dir: &Path,
    resume: Option<Arc<ServeSnapshot>>,
) -> (Arc<SnapshotSlot>, Arc<Metrics>, IngestReport) {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let metrics = Arc::new(Metrics::new());
    if let Some(snap) = &resume {
        slot.publish(Arc::clone(snap));
    }
    let sink = ArchiveSink::spawn(ArchiveWriter::open(dir).unwrap());
    let report = spawn_ingest_archived(
        cfg(),
        Feed::Events(world_events()),
        Arc::clone(&slot),
        Arc::clone(&metrics),
        Some(sink),
        resume,
    )
    .join()
    .expect("archived ingest succeeds");
    (slot, metrics, report)
}

fn api_with_history(dir: &Path, slot: &Arc<SnapshotSlot>, metrics: &Arc<Metrics>) -> Api {
    let history = HistoryStore::open(dir, 8, cfg().flip_log_cap).unwrap();
    Api::new(Arc::clone(slot), Arc::clone(metrics)).with_history(Arc::new(history))
}

// ---------------------------------------------------------------- tests

#[test]
fn restart_serves_byte_identical_responses() {
    let dir = tmp_dir("identical");

    // The daemon that never stops: ingest everything, archive everything.
    let (slot, metrics, report) = run_archived(&dir, None);
    assert!(
        report.epochs >= 4,
        "world too small: {} epochs",
        report.epochs
    );
    assert_eq!(report.archived_epochs, report.epochs as u64);
    let live = slot.load();
    let asns: Vec<u32> = live.records.iter().map(|r| r.asn.0).collect();
    assert!(asns.len() >= 4, "world too small: {} records", asns.len());
    let api = api_with_history(&dir, &slot, &metrics);
    let sequence = request_sequence(&asns);
    let expected: Vec<(u16, String)> = sequence.iter().map(|t| get(&api, t)).collect();

    // "Restart": a fresh process boots from the archive alone. The whole
    // sequence is answered BEFORE any feed backfill — restore is the
    // boot path, replay is background catch-up.
    let slot2 = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let metrics2 = Arc::new(Metrics::new());
    let boot = Instant::now();
    let archive = Archive::open(&dir).unwrap();
    let restored = restore_latest(&archive, cfg().flip_log_cap)
        .unwrap()
        .expect("archive holds epochs");
    slot2.publish(Arc::clone(&restored));
    let api2 = api_with_history(&dir, &slot2, &metrics2);
    let mut actual = vec![get(&api2, &sequence[0])];
    let boot_elapsed = boot.elapsed();
    for target in &sequence[1..] {
        actual.push(get(&api2, target));
    }
    assert!(
        boot_elapsed < Duration::from_millis(100),
        "boot-to-first-answer took {boot_elapsed:?}"
    );
    for (target, (exp, act)) in sequence.iter().zip(expected.iter().zip(&actual)) {
        assert_eq!(exp.0, act.0, "status diverged on {target}");
        assert_eq!(exp.1, act.1, "body diverged on {target}");
    }

    // Backfill: the same deterministic feed replays underneath. Nothing
    // is re-archived, the version never moves, the records stay equal.
    let sink = ArchiveSink::spawn(ArchiveWriter::open(&dir).unwrap());
    let report2 = spawn_ingest_archived(
        cfg(),
        Feed::Events(world_events()),
        Arc::clone(&slot2),
        Arc::new(Metrics::new()),
        Some(sink),
        Some(restored),
    )
    .join()
    .unwrap();
    assert_eq!(report2.archived_epochs, 0, "backfill re-archives nothing");
    let after = slot2.load();
    assert_eq!(after.version(), live.version());
    assert_eq!(after.records, live.records);
    // Snapshot-derived bodies are still byte-identical post-backfill.
    for target in ["/healthz", "/v1/classes", "/v1/flips?since_epoch=0"] {
        let idx = sequence.iter().position(|t| t == target).unwrap();
        assert_eq!(
            get(&api2, target).1,
            expected[idx].1,
            "{target} after backfill"
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn time_travel_matches_batch_replay_oracle() {
    let dir = tmp_dir("oracle");
    let (slot, metrics, _report) = run_archived(&dir, None);
    let api = api_with_history(&dir, &slot, &metrics);

    // The oracle: the same events through an independent batch pipeline,
    // keeping every per-epoch snapshot (no history compaction).
    let mut pipe = StreamPipeline::new(cfg().stream);
    for ev in world_events() {
        pipe.push(ev);
    }
    if pipe.latest().map(|s| s.total_events) != Some(pipe.total_events()) {
        pipe.seal_epoch();
    }
    let out = pipe.finish();
    let live = slot.load();
    assert_eq!(out.snapshots.len() as u64, live.version());

    // `/v1/class/{asn}?epoch=N` byte-matches a record built straight
    // from the oracle epoch's dense counters + class table.
    for snap in &out.snapshots {
        let dense = snap.dense.as_ref().expect("oracle keeps history");
        for &(asn, class) in snap.classes.iter() {
            let id = match dense.by_asn.binary_search_by_key(&asn, |&(a, _)| a) {
                Ok(i) => dense.by_asn[i].1,
                Err(_) => continue,
            };
            let c = &dense.counters[id as usize];
            if c.t == 0 && c.s == 0 && c.f == 0 && c.c == 0 {
                continue; // zero-counter ASes are not in the record table
            }
            let (status, body) = get(&api, &format!("/v1/class/{}?epoch={}", asn.0, snap.epoch));
            assert_eq!(status, 200, "asn {asn} epoch {}", snap.epoch);
            assert_eq!(
                body,
                format!(
                    "{{\"version\":{},\"epoch\":{},\"record\":{{\"asn\":{},\"class\":\"{class}\",\
                     \"counters\":{{\"t\":{},\"s\":{},\"f\":{},\"c\":{}}}}}}}",
                    snap.version, snap.epoch, asn.0, c.t, c.s, c.f, c.c
                )
            );
        }
    }

    // `/v1/history/{asn}` equals the class trajectory read off the
    // oracle's per-epoch class tables.
    let last = out.snapshots.last().unwrap();
    for &(asn, _) in last.classes.iter() {
        let mut history = String::new();
        for (i, snap) in out.snapshots.iter().enumerate() {
            if i > 0 {
                history.push(',');
            }
            let class = snap
                .classes
                .binary_search_by_key(&asn, |&(a, _)| a)
                .ok()
                .map(|i| snap.classes[i].1);
            match class {
                Some(c) => {
                    history.push_str(&format!("{{\"epoch\":{},\"class\":\"{c}\"}}", snap.epoch))
                }
                None => history.push_str(&format!("{{\"epoch\":{},\"class\":null}}", snap.epoch)),
            }
        }
        let (status, body) = get(&api, &format!("/v1/history/{}", asn.0));
        assert_eq!(status, 200);
        assert_eq!(
            body,
            format!(
                "{{\"version\":{},\"epoch\":{},\"asn\":{},\"count\":{},\"history\":[{history}]}}",
                live.version(),
                last.epoch,
                asn.0,
                out.snapshots.len(),
            )
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------- crash proptest

/// The never-crashed run every truncated restart must converge back to.
struct Baseline {
    pristine: Vec<(String, Vec<u8>)>,
    live: Arc<ServeSnapshot>,
    last_epoch: u64,
    classes_body: String,
    flips_body: String,
}

fn baseline() -> &'static Baseline {
    static BASELINE: OnceLock<Baseline> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let dir = tmp_dir("baseline");
        let (slot, metrics, report) = run_archived(&dir, None);
        let live = slot.load();
        let api = Api::new(Arc::clone(&slot), metrics);
        let pristine = fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        let classes_body = get(&api, "/v1/classes").1;
        let flips_body = get(&api, "/v1/flips?since_epoch=0").1;
        let out = Baseline {
            pristine,
            live,
            last_epoch: report.epochs as u64 - 1,
            classes_body,
            flips_body,
        };
        fs::remove_dir_all(&dir).unwrap();
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash model: the most recent write is damaged — the tail segment
    /// is truncated at an arbitrary byte offset, and (half the time) the
    /// manifest additionally predates that segment (crash between the
    /// segment rename and the manifest commit). `Archive::open` must
    /// recover to the longest intact prefix, and a restarted daemon,
    /// after its deterministic backfill, must serve exactly what the
    /// never-crashed daemon serves — re-archiving exactly the epochs the
    /// crash destroyed.
    #[test]
    fn truncated_tail_recovers_and_converges(
        cut in any::<prop::sample::Index>(),
        rollback in any::<bool>(),
    ) {
        let b = baseline();
        let dir = tmp_dir("crash");
        for (name, bytes) in &b.pristine {
            fs::write(dir.join(name), bytes).unwrap();
        }
        let manifest = Manifest::load(&dir).unwrap();
        let tail = manifest.entries.last().unwrap().clone();
        let tail_bytes = fs::read(dir.join(&tail.file)).unwrap();
        fs::write(dir.join(&tail.file), &tail_bytes[..cut.index(tail_bytes.len())]).unwrap();
        if rollback {
            Manifest { entries: manifest.entries[..manifest.entries.len() - 1].to_vec() }
                .store(&dir)
                .unwrap();
        }

        // Recovery: open repairs the manifest to the last complete epoch
        // and the archive verifies clean.
        let archive = Archive::open(&dir).unwrap();
        let report = archive.verify();
        prop_assert!(report.is_ok(), "after recovery: {:?}", report.problems);
        let recovered_last = archive.manifest().last_epoch();
        prop_assert!(recovered_last < Some(b.last_epoch), "tail epoch must be lost");
        let lost = b.last_epoch + 1 - recovered_last.map_or(0, |e| e + 1);

        // Restart: restore what survived, backfill the same feed.
        let restored = restore_latest(&archive, cfg().flip_log_cap).unwrap();
        prop_assert_eq!(restored.as_ref().map(|s| s.epoch_id().unwrap()), recovered_last);
        let (slot, _, report) = run_archived(&dir, restored);
        prop_assert_eq!(report.archived_epochs, lost, "re-archives exactly the lost epochs");

        // Convergence: the served state equals the never-crashed run.
        let after = slot.load();
        prop_assert_eq!(after.version(), b.live.version());
        prop_assert_eq!(&after.records, &b.live.records);
        let api = Api::new(Arc::clone(&slot), Arc::new(Metrics::new()));
        prop_assert_eq!(get(&api, "/v1/classes").1, b.classes_body.clone());
        prop_assert_eq!(get(&api, "/v1/flips?since_epoch=0").1, b.flips_body.clone());

        // And so does the repaired archive itself.
        let archive = Archive::open(&dir).unwrap();
        prop_assert_eq!(archive.manifest().last_epoch(), Some(b.last_epoch));
        prop_assert!(archive.verify().is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
