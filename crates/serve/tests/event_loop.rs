//! Transport-level tests for the epoll event loop in `bgp_serve::http`:
//! partial-write resumption, pipelining, idle reaping, connection-budget
//! shedding, slowloris fairness, long-poll parking, and the c10k proof
//! (10,000 concurrent keep-alive connections held by a separate
//! `bgp-flood` client process so the two fd populations don't share one
//! `RLIMIT_NOFILE`).

use bgp_infer::counters::Thresholds;
use bgp_serve::prelude::*;
use bgp_stream::ingest::StreamEvent;
use bgp_stream::pipeline::{StreamConfig, StreamPipeline};
use bgp_types::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ------------------------------------------------------------- helpers

/// A handler that answers from the request path alone: `/big` returns a
/// multi-megabyte body (to force partial writes), anything else echoes
/// the path.
struct Echo {
    big: usize,
}

impl Handler for Echo {
    fn handle(&self, request: &Request) -> Response {
        match request.path.as_str() {
            "/big" => Response::text("x".repeat(self.big)),
            p => Response::text(format!("ok {p}")),
        }
    }
}

fn echo_server(tune: impl FnOnce(&mut HttpConfig), big: usize) -> HttpServer {
    let mut cfg = HttpConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..Default::default()
    };
    tune(&mut cfg);
    HttpServer::start(cfg, Arc::new(Echo { big })).expect("bind loopback")
}

/// Read exactly one HTTP/1.1 response off the stream; returns
/// `(status, body)`.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read head");
        assert!(n > 0, "EOF mid-head: {:?}", String::from_utf8_lossy(&buf));
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf).unwrap();
    let status: u16 = head[9..12].parse().expect("status code");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length")
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).unwrap())
}

fn get(stream: &mut TcpStream, path: &str) -> (u16, String) {
    let req = format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n");
    stream.write_all(req.as_bytes()).expect("write request");
    read_response(stream)
}

// ------------------------------------------- state-machine regressions

#[test]
fn partial_writes_resume_until_the_response_is_flushed() {
    // A 12 MB body cannot fit any socket buffer: the reactor's write
    // hits `WouldBlock`, the connection flips to EPOLLOUT interest, and
    // the response must complete across many readiness cycles — made
    // worse by a client that doesn't read at all for a while.
    const BIG: usize = 12 * 1024 * 1024;
    let http = echo_server(|_| {}, BIG);
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();
    stream
        .write_all(b"GET /big HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(body.len(), BIG);
    assert!(body.bytes().all(|b| b == b'x'));
    // The connection survived the Writing -> Reading transition: the
    // same socket serves another request.
    let (status, body) = get(&mut stream, "/after");
    assert_eq!(status, 200);
    assert_eq!(body, "ok /after");
    drop(stream);
    http.shutdown();
}

#[test]
fn pipelined_requests_in_one_segment_each_get_a_response() {
    let http = echo_server(|_| {}, 0);
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();
    // Three requests in a single write: the reactor must serve all
    // three from one read buffer, in order, without waiting for more
    // readability between them.
    stream
        .write_all(
            b"GET /a HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /b HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /c HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .unwrap();
    for path in ["/a", "/b", "/c"] {
        let (status, body) = read_response(&mut stream);
        assert_eq!(status, 200);
        assert_eq!(body, format!("ok {path}"));
    }
    drop(stream);
    http.shutdown();
}

#[test]
fn idle_keepalive_connections_are_reaped_at_the_read_timeout() {
    let http = echo_server(|cfg| cfg.read_timeout = Duration::from_millis(200), 0);
    let mut stream = TcpStream::connect(http.local_addr()).unwrap();
    let (status, _) = get(&mut stream, "/x");
    assert_eq!(status, 200);
    assert_eq!(http.open_connections(), 1);
    // Go idle: the server must close us around read_timeout (plus a
    // timer-wheel tick), not hold the socket forever.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let mut tail = [0u8; 16];
    let n = stream.read(&mut tail).expect("clean FIN, not a timeout");
    assert_eq!(n, 0, "expected EOF, got bytes");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "reap took {:?}",
        started.elapsed()
    );
    http.shutdown();
}

#[test]
fn connection_budget_sheds_overflow_with_503() {
    let http = echo_server(|cfg| cfg.max_connections = 3, 0);
    let addr = http.local_addr();
    // Fill the budget with served keep-alive connections.
    let mut held: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            assert_eq!(get(&mut s, "/held").0, 200);
            s
        })
        .collect();
    // The overflow connection is answered 503 and closed.
    let mut extra = TcpStream::connect(addr).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let (status, body) = read_response(&mut extra);
    assert_eq!(status, 503);
    assert!(body.contains("connection budget exhausted"), "{body}");
    let mut tail = [0u8; 16];
    assert_eq!(extra.read(&mut tail).expect("clean close"), 0);
    // The held connections still serve.
    for s in &mut held {
        assert_eq!(get(s, "/still").0, 200);
    }
    // Freeing a slot resumes accepting within a tick or two.
    drop(held.remove(0));
    std::thread::sleep(Duration::from_millis(400));
    let mut fresh = TcpStream::connect(addr).unwrap();
    assert_eq!(get(&mut fresh, "/fresh").0, 200);
    drop(held);
    drop(fresh);
    http.shutdown();
}

#[test]
fn slowloris_clients_get_408_and_do_not_degrade_fast_clients() {
    let http = echo_server(|cfg| cfg.head_deadline = Duration::from_millis(600), 0);
    let addr = http.local_addr();
    // 40 clients that each trickle a partial request head and then stall.
    let slow: Vec<TcpStream> = (0..40)
        .map(|i| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(format!("GET /slow{i} HTTP/1.1\r\nX-Half:").as_bytes())
                .unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    // Fast client latency must be unaffected: with the old blocking
    // pool, 40 stalled sockets held every worker thread and this loop
    // sat behind their read timeouts.
    let mut fast = TcpStream::connect(addr).unwrap();
    let mut worst = Duration::ZERO;
    for i in 0..50 {
        let t = Instant::now();
        let (status, _) = get(&mut fast, &format!("/fast{i}"));
        assert_eq!(status, 200);
        worst = worst.max(t.elapsed());
    }
    assert!(
        worst < Duration::from_millis(500),
        "fast request took {worst:?} behind slowloris clients"
    );
    // Each stalled head is answered 408 and closed once the head
    // deadline lapses.
    let started = Instant::now();
    for mut s in slow {
        let (status, _) = read_response(&mut s);
        assert_eq!(status, 408);
        let mut tail = [0u8; 16];
        assert_eq!(s.read(&mut tail).expect("clean close"), 0);
    }
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "408s took {:?}",
        started.elapsed()
    );
    drop(fast);
    http.shutdown();
}

// ------------------------------------------------------- long-poll API

/// One classified tuple per epoch: enough to seal and publish.
fn seal_one_epoch(pipe: &mut StreamPipeline, publisher: &mut Publisher, t: u64) {
    pipe.push(StreamEvent::new(
        t,
        PathCommTuple::new(
            path(&[5, 9]),
            CommunitySet::from_iter([AnyCommunity::tag_for(Asn(5), 100)]),
        ),
    ));
    pipe.seal_epoch();
    publisher.sync(pipe);
}

/// An `Api` server with publish wakeups wired, plus the publisher side.
fn api_server() -> (HttpServer, Arc<SnapshotSlot>, Publisher, StreamPipeline) {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let http = HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..Default::default()
        },
        Arc::new(Api::new(Arc::clone(&slot), Arc::new(Metrics::new()))),
    )
    .expect("bind loopback");
    let waker = http.waker();
    slot.register_waker(Arc::new(move || waker.wake_all()));
    let publisher = Publisher::new(Arc::clone(&slot), 1024);
    let pipe = StreamPipeline::new(StreamConfig::default());
    (http, slot, publisher, pipe)
}

#[test]
fn long_poll_returns_within_one_publish_interval() {
    let (http, _slot, mut publisher, mut pipe) = api_server();
    let addr = http.local_addr();
    // Nothing published yet: since_epoch=0 parks until the first seal.
    let client = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /v1/flips?since_epoch=0&wait_ms=20000 HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let t = Instant::now();
        let (status, body) = read_response(&mut s);
        (status, body, t.elapsed())
    });
    std::thread::sleep(Duration::from_millis(250));
    seal_one_epoch(&mut pipe, &mut publisher, 0);
    let (status, body, waited) = client.join().unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"since_epoch\":0"), "{body}");
    assert!(body.contains("\"epoch\":0"), "{body}");
    // Parked across the publish, resumed well before the 20 s deadline.
    assert!(
        waited >= Duration::from_millis(200),
        "answered early: {waited:?}"
    );
    assert!(
        waited < Duration::from_secs(10),
        "missed the wake: {waited:?}"
    );
    http.shutdown();
}

#[test]
fn long_poll_deadline_lapses_into_the_regular_answer() {
    let (http, _slot, mut publisher, mut pipe) = api_server();
    seal_one_epoch(&mut pipe, &mut publisher, 0);
    let mut s = TcpStream::connect(http.local_addr()).unwrap();
    // since_epoch=5 is ahead of the published epoch 0: the request
    // parks, the 400 ms deadline lapses, and the normal (empty but
    // complete) flips envelope is the final answer.
    let t = Instant::now();
    s.write_all(b"GET /v1/flips?since_epoch=5&wait_ms=400 HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, body) = read_response(&mut s);
    let waited = t.elapsed();
    assert_eq!(status, 200);
    assert!(body.contains("\"count\":0"), "{body}");
    assert!(waited >= Duration::from_millis(350), "no park: {waited:?}");
    assert!(
        waited < Duration::from_secs(5),
        "deadline overshot: {waited:?}"
    );
    // The connection stays keep-alive after a parked answer.
    let (status, _) = get(&mut s, "/healthz");
    assert_eq!(status, 200);
    drop(s);
    http.shutdown();
}

#[test]
fn shutdown_drains_a_parked_long_poller_with_a_clean_close() {
    let (http, _slot, mut publisher, mut pipe) = api_server();
    seal_one_epoch(&mut pipe, &mut publisher, 0);
    let addr = http.local_addr();
    let client = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        s.write_all(b"GET /v1/flips?since_epoch=99&wait_ms=600000 HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let (status, body) = read_response(&mut s);
        // Drained parked responses are `Connection: close`: expect FIN.
        let mut tail = [0u8; 16];
        let clean = matches!(s.read(&mut tail), Ok(0));
        (status, body, clean)
    });
    std::thread::sleep(Duration::from_millis(300));
    let started = Instant::now();
    http.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shutdown blocked on parked poller: {:?}",
        started.elapsed()
    );
    let (status, body, clean) = client.join().unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"flips\":[]"), "{body}");
    assert!(clean, "parked poller closed uncleanly at shutdown");
}

// -------------------------------------------------------------- c10k

#[test]
fn ten_thousand_keepalive_connections_on_reactor_threads() {
    const TARGET: usize = 10_000;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let http = HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            // The headline claim: >= 10k concurrent connections on no
            // more reactor threads than cores.
            workers: cores,
            max_connections: TARGET + 64,
            ..Default::default()
        },
        Arc::new(Api::new(Arc::clone(&slot), Arc::new(Metrics::new()))),
    )
    .expect("bind loopback");
    let mut publisher = Publisher::new(Arc::clone(&slot), 1024);
    let mut pipe = StreamPipeline::new(StreamConfig::default());
    seal_one_epoch(&mut pipe, &mut publisher, 0);

    // The flood client lives in its own process so its 10k fds come out
    // of a separate RLIMIT_NOFILE budget than the server's 10k.
    let mut flood = std::process::Command::new(env!("CARGO_BIN_EXE_bgp-flood"))
        .args([
            "--addr",
            &http.local_addr().to_string(),
            "--conns",
            &TARGET.to_string(),
            "--probe",
            "200",
            "--hold-ms",
            "120000",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn bgp-flood");
    let mut lines = BufReader::new(flood.stdout.take().unwrap()).lines();

    let connected = lines
        .next()
        .expect("flood reports the ramp")
        .expect("flood stdout readable");
    assert!(
        connected.contains(&format!("\"connected\":{TARGET}")),
        "flood ramp fell short: {connected}"
    );
    // Every one of those connections was served a priming request and
    // is now parked idle on the reactors.
    assert!(
        http.open_connections() >= TARGET,
        "server sees {} open connections, want >= {TARGET}",
        http.open_connections()
    );
    // Queries still answer while 10k sockets are parked: the flood's
    // own probe measures latency through the loaded server...
    let probe = lines
        .next()
        .expect("flood reports the probe")
        .expect("flood stdout readable");
    assert!(
        probe.contains("\"probe_requests\":200"),
        "probe fell short: {probe}"
    );
    let p99_us: u64 = probe
        .split("\"probe_p99_us\":")
        .nth(1)
        .and_then(|rest| rest.trim_end_matches('}').parse().ok())
        .unwrap_or_else(|| panic!("unparseable probe line: {probe}"));
    assert!(
        p99_us < 2_000_000,
        "p99 {p99_us}us with {TARGET} idle connections"
    );
    // ...and a direct query from this process confirms it end-to-end.
    let mut direct = TcpStream::connect(http.local_addr()).unwrap();
    let (status, body) = get(&mut direct, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    flood.kill().ok();
    flood.wait().ok();
    drop(direct);
    http.shutdown();
}
