//! The resilience soak: a churny scenario feed driven through the
//! supervised pipeline under a seeded fault plan must converge to the
//! *exact* classification state of the never-faulted run.
//!
//! The invariant stack this exercises:
//!
//! * injected faults are additive/recoverable only — corrupt batches
//!   are quarantined, truncated tails are redelivered in order, panics
//!   respawn the driver which replays the deterministic feed;
//! * churn overlays (`flap-storm`, `peer-reset`) only ADD duplicate
//!   re-announcements, so the unique-tuple set — and therefore the
//!   classification database — is identical to the steady feed's;
//! * archive faults are retried (with writer reopen) until durable, so
//!   the on-disk archive verifies clean afterwards.

use bgp_archive::prelude::*;
use bgp_infer::counters::Thresholds;
use bgp_serve::driver::{spawn_ingest, spawn_supervised};
use bgp_serve::prelude::*;
use bgp_stream::epoch::EpochPolicy;
use bgp_stream::pipeline::StreamConfig;
use fault::FaultPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 11;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bgp-soak-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> DriverConfig {
    DriverConfig {
        stream: StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(500),
            ..Default::default()
        },
        batch: 128,
        ..Default::default()
    }
}

fn feed(scenario: &str) -> Feed {
    Feed::Sim {
        scenario: scenario.to_string(),
        seed: SEED,
        repeats: 1,
    }
}

/// Run a scenario to completion and return its final snapshot + report.
fn clean_run(scenario: &str) -> (Arc<ServeSnapshot>, IngestReport) {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let report = spawn_ingest(
        cfg(),
        feed(scenario),
        Arc::clone(&slot),
        Arc::new(Metrics::new()),
    )
    .join()
    .expect("clean run succeeds");
    (slot.load(), report)
}

#[test]
fn faulted_flap_storm_converges_to_the_clean_state() {
    let (clean, clean_report) = clean_run("flap-storm");
    assert!(clean_report.total_events > 1_000, "feed is non-trivial");
    assert!(clean_report.epochs > 2, "several epochs seal");

    // Same feed, now under fire: a mid-run driver panic, a truncated
    // batch, probabilistic corrupt injections, and an archive whose
    // third durable write fails (retry + reopen salvages it).
    let dir = tmp_dir("flap");
    let plan = FaultPlan::parse("feed:truncate@4,panic@8,corrupt%0.05;archive:fail@3").unwrap();
    let writer = ArchiveWriter::open_with_io(&dir, Box::new(plan.archive_io(SEED).unwrap()))
        .expect("open faulted archive");
    let sink = ArchiveSink::spawn_with(
        writer,
        SinkConfig {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let health = Arc::new(HealthState::new(HealthConfig {
        stale_after: Duration::from_secs(600),
        ..Default::default()
    }));
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let mut driver_cfg = cfg();
    driver_cfg.fault = Some(Arc::new(plan.feed_injector(SEED).unwrap()));
    driver_cfg.restart_budget = 2;
    let report = spawn_supervised(
        driver_cfg,
        feed("flap-storm"),
        Arc::clone(&slot),
        Arc::new(Metrics::new()),
        Some(sink),
        None,
        Some(Arc::clone(&health)),
    )
    .join()
    .expect("faulted run survives");

    // The injected panic fired and the supervisor respawned through it.
    assert_eq!(report.restarts, 1, "panic@8 respawned once");
    assert!(
        report.quarantined > 0,
        "corrupt injections were quarantined"
    );
    assert_eq!(report.archive_dropped, 0, "retries salvaged every epoch");

    // Convergence: the faulted run's final classification state is
    // byte-identical to the never-faulted run's.
    let faulted = slot.load();
    assert_eq!(report.total_events, clean_report.total_events);
    assert_eq!(report.unique_tuples, clean_report.unique_tuples);
    assert_eq!(report.epochs, clean_report.epochs);
    assert_eq!(faulted.records, clean.records, "classification diverged");

    // The archive took a write fault mid-run and still verifies clean,
    // holding every sealed epoch.
    let archive = Archive::open(&dir).unwrap();
    let verify = archive.verify();
    assert!(verify.is_ok(), "{:?}", verify.problems);
    assert_eq!(verify.epochs, report.epochs as u64);
    assert_eq!(report.archived_epochs, report.epochs as u64);

    // And the survivor reports itself healthy: restart reason cleared
    // by the respawned attempt's publishes, sink quiet, feed drained.
    let verdict = health.evaluate();
    assert_eq!(
        verdict.status,
        HealthStatus::Ok,
        "reasons: {:?}",
        verdict.reasons
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn churn_overlays_are_classification_neutral() {
    // flap-storm and peer-reset only add duplicate re-announcements on
    // top of the steady `random` world: all three runs must land on the
    // same unique-tuple set and the same classification database.
    let (steady, steady_report) = clean_run("random");
    for scenario in ["flap-storm", "peer-reset"] {
        let (churned, churned_report) = clean_run(scenario);
        assert!(
            churned_report.total_events > steady_report.total_events,
            "{scenario} adds churn events"
        );
        assert_eq!(
            churned_report.unique_tuples, steady_report.unique_tuples,
            "{scenario} added new tuples"
        );
        assert_eq!(
            churned.records, steady.records,
            "{scenario} changed the classification state"
        );
    }
}

#[test]
fn peer_reset_survives_ingest_stall_and_archive_torn_write() {
    // The other scenario + the other fault kinds: a stalled feed tick
    // and a torn (half-written) segment, which the retry path must
    // clean up via the tmp-sweep + reopen recovery.
    let (clean, clean_report) = clean_run("peer-reset");

    let dir = tmp_dir("reset");
    let plan = FaultPlan::parse("feed:stall@3;archive:torn@2").unwrap();
    let writer = ArchiveWriter::open_with_io(&dir, Box::new(plan.archive_io(SEED).unwrap()))
        .expect("open faulted archive");
    let sink = ArchiveSink::spawn_with(
        writer,
        SinkConfig {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let health = Arc::new(HealthState::default());
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let mut driver_cfg = cfg();
    driver_cfg.fault = Some(Arc::new(plan.feed_injector(SEED).unwrap()));
    let report = spawn_supervised(
        driver_cfg,
        feed("peer-reset"),
        Arc::clone(&slot),
        Arc::new(Metrics::new()),
        Some(sink),
        None,
        Some(Arc::clone(&health)),
    )
    .join()
    .expect("faulted run survives");

    assert_eq!(report.restarts, 0);
    assert_eq!(report.archive_dropped, 0);
    assert_eq!(report.total_events, clean_report.total_events);
    assert_eq!(
        slot.load().records,
        clean.records,
        "classification diverged"
    );

    let verify = Archive::open(&dir).unwrap().verify();
    assert!(verify.is_ok(), "{:?}", verify.problems);
    assert_eq!(report.archived_epochs, report.epochs as u64);
    assert_eq!(health.evaluate().status, HealthStatus::Ok);
    let _ = std::fs::remove_dir_all(&dir);
}
