//! The degraded-mode `/healthz` surface, end to end over loopback TCP.
//!
//! Each test drives a *real* failure into the supervised pipeline —
//! a permanently failing archive sink, a stalled feed, a dead ingest
//! driver — and asserts the health endpoint reports it with the right
//! JSON body, the right status code, and (where the fault clears) the
//! transition back to `ok`.

use bgp_archive::prelude::*;
use bgp_infer::counters::Thresholds;
use bgp_serve::prelude::*;
use bgp_stream::epoch::EpochPolicy;
use bgp_stream::ingest::StreamEvent;
use bgp_stream::pipeline::StreamConfig;
use bgp_types::prelude::*;
use fault::FaultPlan;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- client

struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        Client {
            stream: TcpStream::connect(addr).expect("connect to server"),
        }
    }

    fn get(&mut self, path: &str) -> (u16, String) {
        let head = format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n");
        self.stream
            .write_all(head.as_bytes())
            .expect("write request");
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            let n = self.stream.read(&mut byte).expect("read response head");
            assert!(n > 0, "EOF mid-head");
            buf.push(byte[0]);
        }
        let head = String::from_utf8(buf).expect("head is UTF-8");
        let status: u16 = head[9..12].parse().expect("status code");
        let length: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::to_string)
            })
            .expect("Content-Length present")
            .trim()
            .parse()
            .expect("numeric Content-Length");
        let mut body = vec![0u8; length];
        self.stream.read_exact(&mut body).expect("read body");
        (status, String::from_utf8(body).expect("body is UTF-8"))
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bgp-health-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn events(n: u64) -> Vec<StreamEvent> {
    (0..n)
        .map(|i| {
            let tag = u32::try_from(2 + i % 5).unwrap();
            StreamEvent::new(
                i,
                PathCommTuple::new(
                    path(&[tag, 9]),
                    CommunitySet::from_iter([AnyCommunity::tag_for(Asn(tag), 100)]),
                ),
            )
        })
        .collect()
}

fn serve_with_health(health: Arc<HealthState>) -> (HttpServer, Client, Arc<SnapshotSlot>) {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let api = Api::new(Arc::clone(&slot), Arc::new(Metrics::new())).with_health(health);
    let http = HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..Default::default()
        },
        Arc::new(api),
    )
    .expect("bind loopback");
    let client = Client::connect(http.local_addr());
    (http, client, slot)
}

#[test]
fn stalled_feed_degrades_then_publish_recovers() {
    let health = Arc::new(HealthState::new(HealthConfig {
        stale_after: Duration::from_millis(5),
        ..Default::default()
    }));
    let (http, mut client, _slot) = serve_with_health(Arc::clone(&health));

    std::thread::sleep(Duration::from_millis(20));
    let (status, body) = client.get("/healthz");
    assert_eq!(status, 200, "degraded still serves traffic");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"epochs_stale\""), "{body}");

    // A publish clears the staleness; /healthz transitions back to ok.
    health.note_publish(1);
    let (status, body) = client.get("/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"reasons\":[]"), "{body}");
    http.shutdown();
}

#[test]
fn sink_drops_degrade_healthz_and_stats() {
    // An archive whose durable writes ALWAYS fail: every submitted
    // epoch exhausts its retries and is dropped.
    let dir = tmp_dir("drops");
    let plan = FaultPlan::parse("archive:fail%1.0").unwrap();
    let writer = ArchiveWriter::open_with_io(&dir, Box::new(plan.archive_io(7).unwrap())).unwrap();
    let sink = ArchiveSink::spawn_with(
        writer,
        SinkConfig {
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let health = Arc::new(HealthState::new(HealthConfig {
        stale_after: Duration::from_secs(600),
        ..Default::default()
    }));
    let (http, mut client, slot) = serve_with_health(Arc::clone(&health));

    let report = bgp_serve::driver::spawn_supervised(
        DriverConfig {
            stream: StreamConfig {
                shards: 2,
                epoch: EpochPolicy::every_events(4),
                ..Default::default()
            },
            batch: 3,
            ..Default::default()
        },
        Feed::Events(events(10)),
        Arc::clone(&slot),
        Arc::new(Metrics::new()),
        Some(sink),
        None,
        Some(Arc::clone(&health)),
    )
    .join()
    .expect("drops are not fatal to the run");
    assert_eq!(report.archived_epochs, 0, "nothing durably committed");
    assert!(report.archive_dropped > 0, "every epoch dropped");

    let (status, body) = client.get("/healthz");
    assert_eq!(status, 200, "degraded still serves traffic");
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"archive_epochs_dropped\""), "{body}");
    assert!(!body.contains("\"status\":\"ok\""), "{body}");

    // /v1/stats grows the same supervision fields.
    let (status, stats) = client.get("/v1/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"health\":\"degraded\""), "{stats}");
    assert!(stats.contains("\"archive_epochs_dropped\""), "{stats}");
    assert!(stats.contains("\"driver_restarts\":0"), "{stats}");
    assert!(stats.contains("\"quarantined\":0"), "{stats}");
    http.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sink_retry_recovers_to_ok() {
    // The first durable write fails, the retry (after reopen) succeeds:
    // the sink reports retries but zero drops, and health ends ok.
    let dir = tmp_dir("retry");
    let plan = FaultPlan::parse("archive:fail@1").unwrap();
    let writer = ArchiveWriter::open_with_io(&dir, Box::new(plan.archive_io(7).unwrap())).unwrap();
    let sink = ArchiveSink::spawn_with(
        writer,
        SinkConfig {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let health = Arc::new(HealthState::new(HealthConfig {
        stale_after: Duration::from_secs(600),
        ..Default::default()
    }));
    let (http, mut client, slot) = serve_with_health(Arc::clone(&health));

    let report = bgp_serve::driver::spawn_supervised(
        DriverConfig {
            stream: StreamConfig {
                shards: 2,
                epoch: EpochPolicy::every_events(4),
                ..Default::default()
            },
            batch: 3,
            ..Default::default()
        },
        Feed::Events(events(10)),
        Arc::clone(&slot),
        Arc::new(Metrics::new()),
        Some(sink),
        None,
        Some(Arc::clone(&health)),
    )
    .join()
    .expect("retried run succeeds");
    assert_eq!(report.archive_dropped, 0, "retry salvaged the epoch");
    assert_eq!(report.archived_epochs, 3, "all epochs durable");

    let (status, body) = client.get("/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let retries = health.sink().expect("sink attached").retries();
    assert!(retries > 0, "the injected failure forced a retry");
    let (_, stats) = client.get("/v1/stats");
    assert!(stats.contains("\"archive_retries\""), "{stats}");
    assert!(stats.contains("\"archive_committed\":3"), "{stats}");

    // And the archive on disk is clean despite the faulted first write.
    let verify = Archive::open(&dir).unwrap().verify();
    assert!(verify.is_ok(), "{:?}", verify.problems);
    http.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_ingest_is_unhealthy_503() {
    // Every feed attempt panics; the restart budget exhausts and the
    // daemon reports itself unhealthy so load balancers eject it.
    let plan = FaultPlan::parse("feed:panic%1.0").unwrap();
    let health = Arc::new(HealthState::new(HealthConfig {
        stale_after: Duration::from_secs(600),
        ..Default::default()
    }));
    let (http, mut client, slot) = serve_with_health(Arc::clone(&health));
    let err = bgp_serve::driver::spawn_supervised(
        DriverConfig {
            fault: Some(Arc::new(plan.feed_injector(7).unwrap())),
            restart_budget: 1,
            ..Default::default()
        },
        Feed::Events(events(10)),
        slot,
        Arc::new(Metrics::new()),
        None,
        None,
        Some(Arc::clone(&health)),
    )
    .join()
    .unwrap_err();
    assert!(err.contains("restart budget"), "{err}");

    let (status, body) = client.get("/healthz");
    assert_eq!(status, 503, "unhealthy is load-balancer visible");
    assert!(body.contains("\"status\":\"unhealthy\""), "{body}");
    assert!(body.contains("\"ingest_failed\""), "{body}");
    http.shutdown();
}

#[test]
fn legacy_healthz_without_health_state_is_unchanged() {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let api = Api::new(slot, Arc::new(Metrics::new()));
    let http = HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..Default::default()
        },
        Arc::new(api),
    )
    .unwrap();
    let mut client = Client::connect(http.local_addr());
    let (status, body) = client.get("/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"version\":0,\"epoch\":null,\"status\":\"ok\"}");
    http.shutdown();
}
