//! End-to-end integration: `bgp-serve` over real loopback TCP.
//!
//! A raw `TcpStream` client (no HTTP library — the responses are checked
//! as bytes on the wire) drives every endpoint against a served world
//! and compares each JSON body **byte-for-byte** against an oracle
//! derived from `bgp_infer::db::records` over an independently-run
//! replica pipeline. A final test hammers the server from several
//! keep-alive connections while the ingest driver seals epochs,
//! asserting responses stay internally consistent and versions monotone.

use bgp_infer::counters::Thresholds;
use bgp_infer::db::DbRecord;
use bgp_serve::prelude::*;
use bgp_stream::epoch::EpochPolicy;
use bgp_stream::pipeline::{StreamConfig, StreamPipeline};
use bgp_types::prelude::*;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

// ---------------------------------------------------------------- client

/// A keep-alive HTTP/1.1 client over one `TcpStream`.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        Client {
            stream: TcpStream::connect(addr).expect("connect to server"),
        }
    }

    fn request(&mut self, method: &str, path: &str) -> (u16, Vec<(String, String)>, String) {
        let head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n");
        self.stream
            .write_all(head.as_bytes())
            .expect("write request");
        // HEAD responses carry Content-Length but no body bytes.
        self.read_response(method == "HEAD")
    }

    fn get(&mut self, path: &str) -> (u16, String) {
        let (status, _, body) = self.request("GET", path);
        (status, body)
    }

    fn read_response(&mut self, head_only: bool) -> (u16, Vec<(String, String)>, String) {
        // Read the head.
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            let n = self.stream.read(&mut byte).expect("read response head");
            assert!(
                n > 0,
                "EOF mid-head; got {:?}",
                String::from_utf8_lossy(&buf)
            );
            buf.push(byte[0]);
        }
        let head = String::from_utf8(buf).expect("response head is UTF-8");
        let mut lines = head.split("\r\n");
        let status_line = lines.next().expect("status line");
        assert!(status_line.starts_with("HTTP/1.1 "), "{status_line}");
        let status: u16 = status_line[9..12].parse().expect("status code");
        let headers: Vec<(String, String)> = lines
            .filter(|l| !l.is_empty())
            .map(|l| {
                let (k, v) = l.split_once(':').expect("header line");
                (k.to_ascii_lowercase(), v.trim().to_string())
            })
            .collect();
        let length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .expect("Content-Length present")
            .1
            .parse()
            .expect("numeric Content-Length");
        let mut body = vec![0u8; if head_only { 0 } else { length }];
        self.stream.read_exact(&mut body).expect("read body");
        (
            status,
            headers,
            String::from_utf8(body).expect("body is UTF-8"),
        )
    }
}

// ----------------------------------------------------------- the world

/// Deterministic event list exercising every class: AS5 tagger/forwarded,
/// AS1 tagger, AS2 silent, AS3 contradictory (undecided).
fn world_events() -> Vec<bgp_stream::ingest::StreamEvent> {
    let mk = |p: &[u32], tags: &[u32]| {
        PathCommTuple::new(
            path(p),
            CommunitySet::from_iter(tags.iter().map(|&a| AnyCommunity::tag_for(Asn(a), 100))),
        )
    };
    let mut tuples: Vec<PathCommTuple> = Vec::new();
    for i in 0..6u32 {
        tuples.push(mk(&[5, 900 + i], &[5]));
        tuples.push(mk(&[1, 5, 900 + i], &[1, 5]));
    }
    for i in 0..4u32 {
        tuples.push(mk(&[2, 900 + i], &[]));
    }
    tuples.push(mk(&[3, 901], &[3]));
    tuples.push(mk(&[3, 902], &[]));
    tuples
        .into_iter()
        .enumerate()
        .map(|(i, t)| bgp_stream::ingest::StreamEvent::new(i as u64, t))
        .collect()
}

const EPOCH_EVENTS: u64 = 7;

fn stream_config() -> StreamConfig {
    StreamConfig {
        shards: 2,
        epoch: EpochPolicy::every_events(EPOCH_EVENTS),
        ..Default::default()
    }
}

/// The oracle: the same events through an independent pipeline, plus the
/// final `db::records` table.
struct Oracle {
    records: Vec<DbRecord>,
    outcome: bgp_stream::outcome::StreamOutcome,
}

fn oracle() -> Oracle {
    let mut pipe = StreamPipeline::new(stream_config());
    for ev in world_events() {
        pipe.push(ev);
    }
    // Mirror the driver: seal the trailing partial epoch explicitly.
    if pipe.latest().map(|s| s.total_events) != Some(pipe.total_events()) {
        pipe.seal_epoch();
    }
    let outcome = pipe.finish();
    Oracle {
        records: bgp_infer::db::records(&outcome.outcome),
        outcome,
    }
}

/// Start a served copy of the world: ingest runs to completion before
/// the tests query, so the served snapshot equals the oracle's final
/// state.
fn served() -> (HttpServer, Arc<SnapshotSlot>, Arc<Metrics>, IngestReport) {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let metrics = Arc::new(Metrics::new());
    let report = spawn_ingest(
        DriverConfig {
            stream: stream_config(),
            batch: 5,
            flip_log_cap: 100_000,
            ..Default::default()
        },
        Feed::Events(world_events()),
        Arc::clone(&slot),
        Arc::clone(&metrics),
    )
    .join()
    .expect("ingest succeeds");
    let http = HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            ..Default::default()
        },
        Arc::new(Api::new(Arc::clone(&slot), Arc::clone(&metrics))),
    )
    .expect("bind loopback");
    (http, slot, metrics, report)
}

/// `{"asn":5,"class":"tf","counters":{"t":1,"s":0,"f":2,"c":0}}` — the
/// wire shape of one record, built independently of the serve encoder.
fn record_json(r: &DbRecord) -> String {
    format!(
        "{{\"asn\":{},\"class\":\"{}\",\"counters\":{{\"t\":{},\"s\":{},\"f\":{},\"c\":{}}}}}",
        r.asn.0, r.class, r.counters.t, r.counters.s, r.counters.f, r.counters.c
    )
}

fn envelope(oracle: &Oracle) -> String {
    let last = oracle.outcome.snapshots.last().expect("at least one epoch");
    format!("{{\"version\":{},\"epoch\":{}", last.version, last.epoch)
}

// ---------------------------------------------------------------- tests

#[test]
fn every_endpoint_matches_the_records_oracle() {
    let oracle = oracle();
    let (http, _slot, _metrics, report) = served();
    assert_eq!(report.total_events, world_events().len() as u64);
    assert_eq!(report.epochs, oracle.outcome.snapshots.len());
    let mut client = Client::connect(http.local_addr());
    let env = envelope(&oracle);

    // /healthz
    let (status, body) = client.get("/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, format!("{env},\"status\":\"ok\"}}"));

    // /v1/class/{asn}: byte-for-byte for every counted AS.
    for r in &oracle.records {
        let (status, body) = client.get(&format!("/v1/class/{}", r.asn.0));
        assert_eq!(status, 200);
        assert_eq!(body, format!("{env},\"record\":{}}}", record_json(r)));
    }
    // Unknown and malformed ASNs.
    let (status, body) = client.get("/v1/class/4000000000");
    assert_eq!(status, 404);
    assert_eq!(
        body,
        "{\"error\":\"asn not in the classification database\"}"
    );
    let (status, _) = client.get("/v1/class/xyz");
    assert_eq!(status, 400);

    // /v1/classes: the whole table.
    let all: Vec<String> = oracle.records.iter().map(record_json).collect();
    let (status, body) = client.get("/v1/classes");
    assert_eq!(status, 200);
    assert_eq!(
        body,
        format!(
            "{env},\"offset\":0,\"total\":{n},\"count\":{n},\"records\":[{}]}}",
            all.join(","),
            n = oracle.records.len(),
        )
    );

    // /v1/classes?class=: filtered per distinct class in the world.
    let mut classes: Vec<String> = oracle.records.iter().map(|r| r.class.as_str()).collect();
    classes.sort();
    classes.dedup();
    assert!(
        classes.len() >= 2,
        "world should span several classes: {classes:?}"
    );
    for class in classes {
        let matching: Vec<String> = oracle
            .records
            .iter()
            .filter(|r| r.class.as_str() == class)
            .map(record_json)
            .collect();
        let (status, body) = client.get(&format!("/v1/classes?class={class}"));
        assert_eq!(status, 200);
        assert_eq!(
            body,
            format!(
                "{env},\"offset\":0,\"total\":{n},\"count\":{n},\"records\":[{}]}}",
                matching.join(","),
                n = matching.len(),
            )
        );
    }

    // /v1/community/{asn}:{value} — dictionary over the record table.
    let tagger = oracle
        .records
        .iter()
        .find(|r| r.class.tagging == bgp_infer::classify::TaggingClass::Tagger)
        .expect("world has a tagger");
    let (status, body) = client.get(&format!("/v1/community/{}:100", tagger.asn.0));
    assert_eq!(status, 200);
    assert_eq!(
        body,
        format!(
            "{env},\"community\":\"{a}:100\",\"owner\":{a},\"verdict\":\"attributable\",\
             \"well_known\":null,\"owner_record\":{}}}",
            record_json(tagger),
            a = tagger.asn.0,
        )
    );
    let (status, body) = client.get("/v1/community/65535:65281");
    assert_eq!(status, 200);
    assert_eq!(
        body,
        format!(
            "{env},\"community\":\"65535:65281\",\"owner\":65535,\"verdict\":\"well-known\",\
             \"well_known\":{{\"name\":\"NO_EXPORT\",\"rfc\":\"RFC1997\",\
             \"default_action\":true}},\"owner_record\":null}}"
        )
    );
    let (status, _) = client.get("/v1/community/not-a-community");
    assert_eq!(status, 400);

    // /v1/flips?since_epoch=0 — the full history, from the epoch diffs.
    let mut flips_json = String::new();
    let mut flip_count = 0usize;
    for snap in &oracle.outcome.snapshots {
        for f in snap.flips.iter() {
            if flip_count > 0 {
                flips_json.push(',');
            }
            let _ = write!(
                flips_json,
                "{{\"epoch\":{},\"asn\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
                snap.epoch, f.asn.0, f.from, f.to
            );
            flip_count += 1;
        }
    }
    assert!(flip_count > 0, "the world must produce flips");
    let (status, body) = client.get("/v1/flips?since_epoch=0");
    assert_eq!(status, 200);
    assert_eq!(
        body,
        format!(
            "{env},\"since_epoch\":0,\"complete\":true,\"count\":{flip_count},\
             \"flips\":[{flips_json}]}}"
        )
    );
    // since_epoch beyond the last epoch: empty but complete.
    let last_epoch = oracle.outcome.snapshots.last().unwrap().epoch;
    let (_, body) = client.get(&format!("/v1/flips?since_epoch={}", last_epoch + 1));
    assert_eq!(
        body,
        format!(
            "{env},\"since_epoch\":{},\"complete\":true,\"count\":0,\"flips\":[]}}",
            last_epoch + 1
        )
    );

    // /v1/reclassify?uniform=0.5 — what-if against AsCounters::classify.
    let relaxed = Thresholds::uniform(0.5);
    let mut histogram: std::collections::BTreeMap<String, u64> = Default::default();
    let mut changed: Vec<String> = Vec::new();
    for r in &oracle.records {
        let new_class = r.counters.classify(&relaxed);
        *histogram.entry(new_class.as_str()).or_insert(0) += 1;
        if new_class != r.class {
            changed.push(format!(
                "{{\"asn\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
                r.asn.0, r.class, new_class
            ));
        }
    }
    let histogram_json: Vec<String> = histogram
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    let (status, body) = client.get("/v1/reclassify?uniform=0.5&full=1");
    assert_eq!(status, 200);
    assert_eq!(
        body,
        format!(
            "{env},\"thresholds\":{{\"tagger\":0.5,\"silent\":0.5,\"forward\":0.5,\
             \"cleaner\":0.5}},\"total\":{},\"changed\":{},\"classes\":{{{}}},\
             \"records\":[{}]}}",
            oracle.records.len(),
            changed.len(),
            histogram_json.join(","),
            changed.join(","),
        )
    );

    // /v1/stats — the requests made above are part of the oracle value.
    let requests_so_far = _metrics.total_requests();
    let last = oracle.outcome.snapshots.last().unwrap();
    let shard_loads: Vec<String> = oracle
        .outcome
        .shard_loads
        .iter()
        .map(|l| l.to_string())
        .collect();
    // Seal/count durations and replay counters are real measurements,
    // not oracle-derivable — read them off the served snapshot itself.
    let served = _slot.load();
    let served_epoch = served.epoch.as_ref().expect("served snapshot has an epoch");
    let (status, body) = client.get("/v1/stats");
    assert_eq!(status, 200);
    // The seal_latency/count_latency objects read the process-global
    // obs histograms — real measurements shared with every other test
    // in this binary, so their values are not oracle-derivable. Check
    // their shape, then excise them and byte-compare the rest.
    for field in ["seal_latency", "count_latency"] {
        let at = body.find(&format!("\"{field}\":{{")).expect(field);
        let object = &body[at..at + body[at..].find('}').expect("object end")];
        for key in ["p50_nanos", "p99_nanos", "max_nanos", "observed"] {
            assert!(
                object.contains(&format!("\"{key}\":")),
                "{field} lacks {key}"
            );
        }
    }
    let strip = |body: &str, field: &str| -> String {
        let start = body.find(&format!(",\"{field}\":{{")).expect(field);
        let end = start + body[start..].find('}').expect("object end") + 1;
        format!("{}{}", &body[..start], &body[end..])
    };
    let body = strip(&strip(&body, "seal_latency"), "count_latency");
    // Uptime is wall-clock, not oracle-derivable — check presence, then
    // excise the scalar before the byte-compare.
    let uptime_at = body.find(",\"uptime_seconds\":").expect("uptime_seconds");
    let uptime_end = uptime_at
        + 1
        + body[uptime_at + 1..]
            .find([',', '}'])
            .expect("uptime value end");
    let body = format!("{}{}", &body[..uptime_at], &body[uptime_end..]);
    assert_eq!(
        body,
        format!(
            "{env},\"sealed_at\":{},\"epoch_events\":{},\"seal_nanos\":{},\
             \"count_nanos\":{},\"total_events\":{},\
             \"unique_tuples\":{},\"duplicates\":{},\"classified\":{},\"flips_logged\":{},\
             \"interned_asns\":{},\"arena_hops\":{},\
             \"last_replay\":{{\"replayed\":{},\"total\":{}}},\"shard_loads\":[{}],\
             \"requests_total\":{requests_so_far}}}",
            last.sealed_at,
            last.events,
            served_epoch.seal_nanos,
            served_epoch.count_nanos,
            last.total_events,
            last.unique_tuples,
            oracle.outcome.duplicates,
            oracle.records.len(),
            flip_count,
            served.ingest.interned_asns,
            served.ingest.arena_hops,
            served.ingest.replayed_steps,
            served.ingest.total_steps,
            shard_loads.join(","),
        )
    );

    // /metrics — exposition carries the snapshot gauges.
    let (status, body) = client.get("/metrics");
    assert_eq!(status, 200);
    assert!(body.contains(&format!(
        "bgp_serve_snapshot_version {}",
        oracle.outcome.snapshots.last().unwrap().version
    )));
    assert!(body.contains(&format!(
        "bgp_serve_snapshot_unique_tuples {}",
        oracle.outcome.unique_tuples
    )));
    assert!(body.contains(&format!(
        "bgp_serve_events_ingested_total {}",
        oracle.outcome.total_events
    )));

    // Close the keep-alive connection before shutdown, or the worker
    // parked in read() on it would only notice at its read timeout.
    drop(client);
    http.shutdown();
}

#[test]
fn keepalive_head_and_transport_limits() {
    let (http, _slot, _metrics, _report) = served();
    let addr = http.local_addr();

    // One connection, many requests (keep-alive).
    let mut client = Client::connect(addr);
    for _ in 0..32 {
        let (status, body) = client.get("/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
    }

    // HEAD: headers only, Content-Length of the would-be body.
    let (status, headers, body) = client.request("HEAD", "/healthz");
    assert_eq!(status, 200);
    assert!(body.is_empty());
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .unwrap()
        .1
        .parse()
        .unwrap();
    assert!(len > 0);
    // The connection still serves GETs after the HEAD.
    let (status, body) = client.get("/healthz");
    assert_eq!(status, 200);
    assert_eq!(body.len(), len);

    // Unsupported method.
    let mut client2 = Client::connect(addr);
    let (status, _, body) = client2.request("DELETE", "/healthz");
    assert_eq!(status, 405);
    assert!(body.contains("only GET and HEAD"));

    drop(client);
    drop(client2);
    http.shutdown();

    // Oversized request head: 431 and the connection closes. A dedicated
    // server with a tiny head limit keeps the whole oversized request in
    // one segment the server fully drains, so the close is a clean FIN
    // (no RST race on the unread remainder).
    let small = HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_request_bytes: 512,
            ..Default::default()
        },
        Arc::new(Api::new(
            Arc::new(SnapshotSlot::new(Thresholds::default())),
            Arc::new(Metrics::new()),
        )),
    )
    .unwrap();
    let mut stream = TcpStream::connect(small.local_addr()).unwrap();
    // No head terminator: the server keeps reading until the 512-byte
    // cap trips (draining everything we sent along the way).
    let huge = format!("GET /healthz HTTP/1.1\r\nX-Pad: {}", "x".repeat(600));
    stream.write_all(huge.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");
    small.shutdown();
}

#[test]
fn shutdown_is_prompt_despite_idle_keepalive_connection() {
    let (http, _slot, _metrics, _report) = served();
    let mut client = Client::connect(http.local_addr());
    let (status, _) = client.get("/healthz");
    assert_eq!(status, 200);
    // The connection stays open and idle: the worker parked on it must
    // notice the stop flag within a poll slice, not the 30 s idle
    // timeout.
    let started = std::time::Instant::now();
    http.shutdown();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "shutdown took {:?}",
        started.elapsed()
    );
}

#[test]
fn concurrent_queries_stay_consistent_during_epoch_seals() {
    // Serve while the driver is still ingesting: a large replayed feed
    // with a tiny epoch policy seals continuously under the queries.
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let metrics = Arc::new(Metrics::new());
    let mut events = Vec::new();
    for round in 0..60u64 {
        for ev in world_events() {
            events.push(bgp_stream::ingest::StreamEvent::new(
                round * 100 + ev.timestamp,
                ev.tuple,
            ));
        }
    }
    let total = events.len() as u64;
    let ingest = spawn_ingest(
        DriverConfig {
            stream: StreamConfig {
                shards: 2,
                epoch: EpochPolicy::every_events(11),
                ..Default::default()
            },
            batch: 7,
            flip_log_cap: 100_000,
            ..Default::default()
        },
        Feed::Events(events),
        Arc::clone(&slot),
        Arc::clone(&metrics),
    );
    let http = HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            ..Default::default()
        },
        Arc::new(Api::new(Arc::clone(&slot), Arc::clone(&metrics))),
    )
    .unwrap();
    let addr = http.local_addr();

    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut last_version = 0u64;
                let mut observed_versions = 0usize;
                while observed_versions < 120 {
                    let (status, body) = client.get("/v1/stats");
                    assert_eq!(status, 200);
                    // A response is a view of exactly one snapshot:
                    // version == epoch + 1 always (post-first-seal), and
                    // versions never go backwards on a connection.
                    let version = json_u64(&body, "version");
                    if let Some(epoch) = json_u64_opt(&body, "epoch") {
                        assert_eq!(version, epoch + 1, "torn envelope: {body}");
                    } else {
                        assert_eq!(version, 0, "epoch null but version set: {body}");
                    }
                    assert!(version >= last_version, "version went backwards: {body}");
                    assert!(
                        json_u64(&body, "classified") == 0 || version > 0,
                        "records served before any seal: {body}"
                    );
                    last_version = version;
                    observed_versions += 1;
                }
                last_version
            })
        })
        .collect();

    let report = ingest.join().expect("ingest ok");
    assert_eq!(report.total_events, total);
    for r in readers {
        let final_version = r.join().expect("reader ok");
        assert!(final_version <= report.epochs as u64);
    }
    // After ingest, everyone sees the final epoch.
    let mut client = Client::connect(addr);
    let (_, body) = client.get("/healthz");
    assert_eq!(json_u64(&body, "version"), report.epochs as u64);
    drop(client);
    http.shutdown();
}

/// Extract `"name":123` from a flat JSON body (test-grade parsing).
fn json_u64(body: &str, name: &str) -> u64 {
    json_u64_opt(body, name).unwrap_or_else(|| panic!("{name} not found in {body}"))
}

fn json_u64_opt(body: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let start = body.find(&key)? + key.len();
    let rest = &body[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
