//! The observability surface, end to end over loopback TCP.
//!
//! A full world (ingest driver + archive sink + HTTP server) runs to
//! completion, then a raw-socket client:
//!
//! * scrapes `/metrics` and **parses the text back** — every family
//!   must carry a `# HELP` / `# TYPE` preamble, histogram buckets must
//!   be cumulative-monotone and end at `+Inf`, `_count` must equal the
//!   `+Inf` bucket, and `_sum` must be present — and the stage-latency
//!   histogram families added by the obs layer must all be live;
//! * hits `/v1/debug/timings` and asserts the seal/publish/archive
//!   stages report real observations with ordered quantiles;
//! * hits `/v1/debug/trace` and checks the journal replays seal,
//!   publish, archive-append, and http-request completions with
//!   monotone sequence numbers.

use bgp_archive::prelude::*;
use bgp_infer::counters::Thresholds;
use bgp_serve::driver::spawn_ingest_archived;
use bgp_serve::prelude::*;
use bgp_stream::epoch::EpochPolicy;
use bgp_stream::ingest::StreamEvent;
use bgp_stream::pipeline::StreamConfig;
use bgp_types::prelude::*;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------- client

struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        Client {
            stream: TcpStream::connect(addr).expect("connect to server"),
        }
    }

    fn get(&mut self, path: &str) -> (u16, String) {
        let head = format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n");
        self.stream
            .write_all(head.as_bytes())
            .expect("write request");
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            let n = self.stream.read(&mut byte).expect("read response head");
            assert!(n > 0, "EOF mid-head");
            buf.push(byte[0]);
        }
        let head = String::from_utf8(buf).expect("head is UTF-8");
        let status: u16 = head[9..12].parse().expect("status code");
        let length: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::to_string)
            })
            .expect("Content-Length present")
            .trim()
            .parse()
            .expect("numeric Content-Length");
        let mut body = vec![0u8; length];
        self.stream.read_exact(&mut body).expect("read body");
        (status, String::from_utf8(body).expect("body is UTF-8"))
    }
}

// ----------------------------------------------------------- the world

fn world_events() -> Vec<StreamEvent> {
    let mut state = 0x0123_4567_89AB_CDEFu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..60u64)
        .map(|i| {
            let r = rng();
            let origin = 8_000 + (i / 4) as u32;
            let tagger = 64_500 + (r % 5) as u32;
            let comms = if r % 9 == 0 {
                CommunitySet::from_iter([])
            } else {
                CommunitySet::from_iter([AnyCommunity::tag_for(Asn(tagger), (r % 700) as u32)])
            };
            let tuple = PathCommTuple::new(path(&[100, tagger, origin]), comms);
            StreamEvent::new(5 * i + 1, tuple)
        })
        .collect()
}

fn tmp_dir() -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bgp-obs-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the full observable stack — archived ingest to completion, then
/// a live HTTP server — and return a connected client.
fn served() -> (HttpServer, Client) {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let metrics = Arc::new(Metrics::new());
    let dir = tmp_dir();
    let sink = ArchiveSink::spawn(ArchiveWriter::open(&dir).expect("open archive"));
    spawn_ingest_archived(
        DriverConfig {
            stream: StreamConfig {
                shards: 2,
                epoch: EpochPolicy::every_events(16),
                ..Default::default()
            },
            batch: 8,
            flip_log_cap: 100_000,
            ..Default::default()
        },
        Feed::Events(world_events()),
        Arc::clone(&slot),
        Arc::clone(&metrics),
        Some(sink),
        None,
    )
    .join()
    .expect("ingest succeeds");
    let http = HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..Default::default()
        },
        Arc::new(Api::new(slot, metrics)),
    )
    .expect("bind loopback");
    let client = Client::connect(http.local_addr());
    (http, client)
}

// ------------------------------------------- Prometheus text parse-back

#[derive(Debug, Default)]
struct Family {
    help: bool,
    kind: String,
    /// Sample lines in exposition order: (full label part, value).
    samples: Vec<(String, f64)>,
}

/// Parse text-format v0.0.4 into families, panicking on any line that
/// is not a comment, a blank, or a `name{labels} value` sample whose
/// name (sans `_bucket`/`_sum`/`_count` suffix for histograms) has
/// already been declared by a HELP/TYPE preamble above it.
fn parse_families(text: &str) -> BTreeMap<String, Family> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP name");
            assert!(
                rest.len() > name.len() + 1,
                "HELP line for {name} has no help text"
            );
            families.entry(name.to_string()).or_default().help = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name");
            let kind = it.next().expect("TYPE kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind} for {name}"
            );
            let fam = families.entry(name.to_string()).or_default();
            assert!(fam.help, "TYPE for {name} precedes its HELP");
            assert!(fam.kind.is_empty(), "duplicate TYPE for {name}");
            fam.kind = kind.to_string();
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        // Sample: `name value` or `name{labels} value`.
        let (name_labels, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|e| {
            panic!("non-numeric sample value in {line:?}: {e}");
        });
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, l)) => (n, format!("{{{l}")),
            None => (name_labels, String::new()),
        };
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| families.get(*f).is_some_and(|fam| fam.kind == "histogram"))
            .unwrap_or(name);
        let fam = families
            .get_mut(family)
            .unwrap_or_else(|| panic!("sample {name} has no HELP/TYPE preamble"));
        assert!(!fam.kind.is_empty(), "sample {name} precedes its TYPE");
        let suffix = name.strip_prefix(family).unwrap_or("");
        fam.samples.push((format!("{suffix}{labels}"), value));
    }
    families
}

/// The `le` bound of a bucket sample key like `_bucket{kind="full",le="0.5"}`.
fn le_bound(sample_key: &str) -> Option<f64> {
    let le = sample_key.split("le=\"").nth(1)?.split('"').next()?;
    Some(if le == "+Inf" {
        f64::INFINITY
    } else {
        le.parse().expect("numeric le bound")
    })
}

/// Split a sample key into its (`_bucket`/`_sum`/`_count`) suffix and
/// label part.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

/// Strip the `le` label: the series key a sample belongs to.
fn series_of(labels: &str) -> String {
    labels
        .trim_matches(|c| c == '{' || c == '}')
        .split(',')
        .filter(|kv| !kv.is_empty() && !kv.starts_with("le="))
        .collect::<Vec<&str>>()
        .join(",")
}

fn validate_histogram(name: &str, fam: &Family) {
    // Group buckets / sums / counts by label series.
    let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for (key, value) in &fam.samples {
        let (suffix, labels) = split_key(key);
        match suffix {
            "_bucket" => {
                let le = le_bound(key).unwrap_or_else(|| panic!("{name} bucket without le: {key}"));
                buckets
                    .entry(series_of(labels))
                    .or_default()
                    .push((le, *value));
            }
            "_sum" => {
                sums.insert(series_of(labels), *value);
            }
            "_count" => {
                counts.insert(series_of(labels), *value);
            }
            other => panic!("{name}: unexpected histogram sample suffix {other:?}"),
        }
    }
    assert!(!buckets.is_empty(), "{name}: histogram with no buckets");
    for (series, bs) in &buckets {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0.0;
        for &(le, cum) in bs {
            assert!(le > prev_le, "{name}{series}: le bounds not increasing");
            assert!(
                cum >= prev_cum,
                "{name}{series}: bucket counts not cumulative-monotone"
            );
            prev_le = le;
            prev_cum = cum;
        }
        let (last_le, last_cum) = *bs.last().unwrap();
        assert_eq!(
            last_le,
            f64::INFINITY,
            "{name}{series}: last bucket must be +Inf"
        );
        let count = counts
            .get(series)
            .unwrap_or_else(|| panic!("{name}{series}: missing _count"));
        assert_eq!(
            *count, last_cum,
            "{name}{series}: _count disagrees with +Inf bucket"
        );
        let sum = sums
            .get(series)
            .unwrap_or_else(|| panic!("{name}{series}: missing _sum"));
        assert!(*sum >= 0.0, "{name}{series}: negative _sum");
        if *count > 0.0 {
            assert!(
                *sum > 0.0,
                "{name}{series}: observations but zero _sum (sub-nanosecond stages?)"
            );
        }
    }
}

/// Stage-latency families the obs layer adds to the exposition. Each is
/// exercised by the archived-ingest world above, so they must all be
/// present *and live* (at least one observation).
const OBS_HISTOGRAMS: [&str; 8] = [
    "bgp_stream_seal_duration_seconds",
    "bgp_stream_count_duration_seconds",
    "bgp_stream_merge_duration_seconds",
    "bgp_stream_recount_duration_seconds",
    "bgp_serve_publish_duration_seconds",
    "bgp_serve_ingest_batch_duration_seconds",
    "bgp_archive_append_duration_seconds",
    "bgp_serve_http_request_duration_seconds",
];

#[test]
fn metrics_exposition_parses_back_and_is_live() {
    let (http, mut client) = served();
    // One request before the scrape so the http-request histogram has
    // at least one completed observation.
    let (status, _) = client.get("/v1/stats");
    assert_eq!(status, 200);
    let (status, text) = client.get("/metrics");
    assert_eq!(status, 200);

    let families = parse_families(&text);
    for (name, fam) in &families {
        assert!(fam.help, "{name}: missing HELP");
        assert!(!fam.kind.is_empty(), "{name}: missing TYPE");
        if fam.kind == "histogram" {
            validate_histogram(name, fam);
        } else {
            assert!(!fam.samples.is_empty(), "{name}: family with no samples");
        }
    }

    for name in OBS_HISTOGRAMS {
        let fam = families
            .get(name)
            .unwrap_or_else(|| panic!("obs family {name} missing from /metrics"));
        assert_eq!(fam.kind, "histogram", "{name}: wrong TYPE");
        let observed: f64 = fam
            .samples
            .iter()
            .filter(|(k, _)| k.starts_with("_count"))
            .map(|(_, v)| v)
            .sum();
        assert!(observed > 0.0, "{name}: present but never observed");
    }

    // Archive counters/gauges are part of the same exposition.
    for name in [
        "bgp_archive_segments_appended_total",
        "bgp_archive_bytes_written_total",
        "bgp_archive_sink_queue_depth",
        "bgp_archive_sink_failed",
    ] {
        assert!(families.contains_key(name), "{name} missing from /metrics");
    }
    let appended = families["bgp_archive_segments_appended_total"].samples[0].1;
    assert!(appended >= 1.0, "no segments appended during the run");
    assert_eq!(
        families["bgp_archive_sink_queue_depth"].samples[0].1, 0.0,
        "queue depth nonzero after the sink drained"
    );
    assert_eq!(families["bgp_archive_sink_failed"].samples[0].1, 0.0);

    http.shutdown();
}

// ------------------------------------------------------ debug endpoints

/// Pull `"field":<number>` out of a JSON body (flat, no nesting smarts).
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let at = body.find(&format!("\"{field}\":"))?;
    let rest = &body[at + field.len() + 3..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn debug_timings_reports_live_stage_latencies() {
    let (http, mut client) = served();
    let (status, body) = client.get("/v1/debug/timings");
    assert_eq!(status, 200);
    for family in OBS_HISTOGRAMS {
        assert!(
            body.contains(&format!("\"family\":\"{family}\"")),
            "timings missing {family}: {body}"
        );
    }
    // Each timing carries quantiles; spot-check the seal stage reports
    // a real latency with ordered quantiles.
    let seal_at = body
        .find("\"family\":\"bgp_stream_seal_duration_seconds\"")
        .unwrap();
    let seal = &body[seal_at..];
    let observed = json_u64(seal, "observed").expect("seal observed");
    let p50 = json_u64(seal, "p50_nanos").expect("seal p50");
    let p99 = json_u64(seal, "p99_nanos").expect("seal p99");
    let max = json_u64(seal, "max_nanos").expect("seal max");
    assert!(observed >= 1, "no seals observed");
    assert!(p50 > 0 && p50 <= p99 && p99 <= max, "unordered quantiles");
    http.shutdown();
}

#[test]
fn debug_trace_replays_the_journal() {
    let (http, mut client) = served();
    // Generate a journaled http_request completion before tracing.
    let (status, _) = client.get("/v1/stats");
    assert_eq!(status, 200);
    let (status, body) = client.get("/v1/debug/trace?last=512");
    assert_eq!(status, 200);
    let total = json_u64(&body, "journaled_total").expect("journaled_total");
    let count = json_u64(&body, "count").expect("count");
    assert!(total >= 1 && count >= 1, "empty journal: {body}");
    for name in ["seal", "publish", "archive_append", "http_request"] {
        assert!(
            body.contains(&format!("\"name\":\"{name}\"")),
            "trace missing {name} events: {body}"
        );
    }
    // Sequence numbers are monotone increasing in the replay.
    let mut last_seq = None;
    for chunk in body.split("\"seq\":").skip(1) {
        let end = chunk
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(chunk.len());
        let seq: u64 = chunk[..end].parse().expect("numeric seq");
        if let Some(prev) = last_seq {
            assert!(seq > prev, "journal replay not seq-ordered");
        }
        last_seq = Some(seq);
    }
    // Bounded: asking for 3 returns at most 3.
    let (_, body3) = client.get("/v1/debug/trace?last=3");
    let count3 = json_u64(&body3, "count").expect("count");
    assert!(count3 <= 3, "last=3 returned {count3} events");
    http.shutdown();
}

/// An empty histogram has no quantiles: the JSON endpoints must report
/// `null` for p50/p99 (never a misleading `0`), and switch to numbers
/// once the family records an observation.
#[test]
fn empty_histogram_quantiles_are_null_in_json() {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let obs = Arc::new(obs::ObsRegistry::new());
    // Registered but never recorded — along with the endpoint
    // histograms Api registers on construction, everything is empty.
    obs.histogram("bgp_stream_seal_duration_seconds", "h", &[]);
    let api = Api::with_obs(slot, Arc::new(Metrics::new()), Arc::clone(&obs));
    let request = |path: &str| Request {
        method: "GET".to_string(),
        path: path.to_string(),
        query: Vec::new(),
    };

    let timings = api.handle(&request("/v1/debug/timings"));
    assert_eq!(timings.status, 200);
    assert!(timings.body.contains("\"observed\":0"), "{}", timings.body);
    assert!(
        timings
            .body
            .contains("\"p50_nanos\":null,\"p99_nanos\":null"),
        "{}",
        timings.body
    );
    assert!(
        !timings.body.contains("\"p50_nanos\":0"),
        "zero quantile leaked for an empty histogram: {}",
        timings.body
    );

    let stats = api.handle(&request("/v1/stats"));
    assert_eq!(stats.status, 200);
    assert!(
        stats
            .body
            .contains("\"seal_latency\":{\"p50_nanos\":null,\"p99_nanos\":null"),
        "{}",
        stats.body
    );

    // One observation: the same family now reports numeric quantiles.
    obs.histogram("bgp_stream_seal_duration_seconds", "h", &[])
        .record(1_000);
    let stats = api.handle(&request("/v1/stats"));
    let seal_at = stats.body.find("\"seal_latency\":{").expect("seal_latency");
    let seal = &stats.body[seal_at..];
    let p50 = json_u64(seal, "p50_nanos").expect("numeric p50 after a record");
    assert!(p50 > 0, "{}", stats.body);
}
