//! Self-monitoring end-to-end: the sampler's time-series rings, the
//! per-epoch provenance traces, and the alert-rules engine, all observed
//! over real loopback TCP.
//!
//! Three proofs:
//! 1. `/v1/debug/timeseries` serves at least two genuinely sampled
//!    windows with a nonzero counter rate (a real sampler thread ticking
//!    a real registry, not synthetic samples).
//! 2. An epoch's provenance trace is byte-identical whether served live
//!    (from the in-memory `TraceStore`) or from the archive's persisted
//!    trace frame after a "restart" (a fresh server with no live store).
//! 3. An alert rule fires into `/healthz` reasons after its consecutive
//!    over-threshold windows, and clears once the signal drops.

use bgp_archive::prelude::{ArchiveWriter, SegmentStats};
use bgp_infer::counters::Thresholds;
use bgp_serve::prelude::*;
use bgp_stream::epoch::EpochPolicy;
use bgp_stream::ingest::StreamEvent;
use bgp_stream::pipeline::{StreamConfig, StreamPipeline};
use bgp_types::prelude::*;
use obs::trace::TraceStore;
use obs::{spawn_sampler, AlertState, Recorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One-shot HTTP/1.1 GET over a fresh loopback connection.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text[9..12].parse().expect("status code");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn serve(api: Api) -> HttpServer {
    HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..Default::default()
        },
        Arc::new(api),
    )
    .expect("bind loopback")
}

fn tag_events(n: u64) -> Vec<StreamEvent> {
    (0..n)
        .map(|i| {
            let tag = u32::try_from(2 + i % 5).unwrap();
            StreamEvent::new(
                i,
                PathCommTuple::new(
                    path(&[tag, 9]),
                    CommunitySet::from_iter([AnyCommunity::tag_for(Asn(tag), 100)]),
                ),
            )
        })
        .collect()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("bgp-selfmon-{tag}-{}-{n}", std::process::id()))
}

#[test]
fn timeseries_endpoint_serves_sampled_windows_with_nonzero_rates() {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let recorder = Arc::new(Recorder::new(obs::global(), 64));
    let api = Api::new(Arc::clone(&slot), Arc::new(Metrics::new()))
        .with_timeseries(Arc::clone(&recorder));
    let http = serve(api);
    let addr = http.local_addr();

    // A real sampler thread ticks the process registry while this test
    // drives a counter — the windows it cuts are genuine wall-clock
    // samples, not synthetic pushes.
    let counter = obs::global().counter(
        "bgp_selfmon_test_total",
        "Loopback self-monitoring test traffic",
        &[],
    );
    let sampler = spawn_sampler(Arc::clone(&recorder), Duration::from_millis(15));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let body = loop {
        counter.add(100);
        std::thread::sleep(Duration::from_millis(5));
        let (status, body) = http_get(addr, "/v1/debug/timeseries?metric=bgp_selfmon_test_total");
        if status == 200 {
            let nonzero = body
                .split("\"rate\":")
                .skip(1)
                .filter(|rest| {
                    let value = rest.split([',', '}']).next().unwrap_or("0");
                    value.parse::<f64>().map(|v| v != 0.0).unwrap_or(false)
                })
                .count();
            if nonzero >= 2 {
                break body;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no two nonzero-rate windows within 10s; last body: {body}"
        );
    };
    sampler.stop();
    sampler.join();

    assert!(
        body.contains("\"metric\":\"bgp_selfmon_test_total\""),
        "{body}"
    );
    assert!(body.contains("\"kind\":\"counter\""), "{body}");
    // Counter samples have no latency quantiles: explicit nulls.
    assert!(body.contains("\"p50_nanos\":null"), "{body}");

    // The whole-registry summary lists the family with its aggregates.
    let (status, summary) = http_get(addr, "/v1/debug/timeseries");
    assert_eq!(status, 200);
    assert!(
        summary.contains("\"metric\":\"bgp_selfmon_test_total\""),
        "{summary}"
    );
    assert!(summary.contains("\"last_rate\":"), "{summary}");

    // Unknown family: 404. No recorder attached: 400.
    assert_eq!(http_get(addr, "/v1/debug/timeseries?metric=nope").0, 404);
    let bare = serve(Api::new(Arc::clone(&slot), Arc::new(Metrics::new())));
    assert_eq!(http_get(bare.local_addr(), "/v1/debug/timeseries").0, 400);
    bare.shutdown();
    http.shutdown();
}

#[test]
fn epoch_trace_is_identical_across_restart() {
    let dir = tmp_dir("trace");
    let _ = std::fs::remove_dir_all(&dir);

    // "First boot": pipeline + publisher + archive writer all threaded
    // with one TraceStore, exactly like the daemon wires them.
    let traces = Arc::new(TraceStore::new(64));
    let mut pipe = StreamPipeline::new(StreamConfig {
        shards: 2,
        epoch: EpochPolicy::every_events(6),
        trace: Some(Arc::clone(&traces)),
        ..Default::default()
    });
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let mut publisher = Publisher::new(Arc::clone(&slot), 4096).with_traces(Arc::clone(&traces));
    for ev in tag_events(18) {
        if pipe.push(ev).is_some() {
            publisher.sync(&pipe);
        }
    }
    let mut writer = ArchiveWriter::open(&dir)
        .unwrap()
        .with_traces(Arc::clone(&traces));
    for snap in pipe.snapshots() {
        writer.append_epoch(snap, &SegmentStats::default()).unwrap();
    }
    drop(writer);

    let live_api =
        Api::new(Arc::clone(&slot), Arc::new(Metrics::new())).with_traces(Arc::clone(&traces));
    let live = serve(live_api);
    let (status, live_body) = http_get(live.local_addr(), "/v1/debug/epoch/1/trace");
    assert_eq!(status, 200, "{live_body}");
    assert!(live_body.contains("\"source\":\"live\""), "{live_body}");
    for stage in ["seal", "publish", "archive"] {
        assert!(
            live_body.contains(&format!("\"stage\":\"{stage}\"")),
            "missing {stage}: {live_body}"
        );
    }
    live.shutdown();

    // "Restart": a fresh server with no live TraceStore answers the same
    // epoch from the archive's persisted trace frame.
    let history = Arc::new(HistoryStore::open(&dir, 4, 4096).unwrap());
    let restarted_api = Api::new(Arc::clone(&slot), Arc::new(Metrics::new())).with_history(history);
    let restarted = serve(restarted_api);
    let (status, archived_body) = http_get(restarted.local_addr(), "/v1/debug/epoch/1/trace");
    assert_eq!(status, 200, "{archived_body}");
    assert!(
        archived_body.contains("\"source\":\"archive\""),
        "{archived_body}"
    );

    // Everything from the stage timeline on is byte-identical; only the
    // source marker (live vs archive) may differ.
    let tail = |body: &str| {
        let at = body.find("\"stage_count\":").expect("stage timeline");
        body[at..].to_string()
    };
    assert_eq!(tail(&live_body), tail(&archived_body));

    // An epoch nobody recorded: 404, not an empty trace.
    assert_eq!(
        http_get(restarted.local_addr(), "/v1/debug/epoch/99/trace").0,
        404
    );
    restarted.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn alert_fires_into_healthz_and_clears() {
    // Rule over a test-owned counter family: `_rate` selects the
    // per-second delta the sampler computes for it.
    let rules = obs::parse_alert_rules("bgp_selfmon_alert_total_rate>5@2").unwrap();
    let alerts = Arc::new(AlertState::new(rules, &obs::global()));
    let health = Arc::new(HealthState::default());
    health.attach_alerts(Arc::clone(&alerts));
    let recorder = Arc::new(Recorder::new(obs::global(), 32).with_alerts(Arc::clone(&alerts)));

    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let api = Api::new(Arc::clone(&slot), Arc::new(Metrics::new()))
        .with_health(Arc::clone(&health))
        .with_timeseries(Arc::clone(&recorder));
    let http = serve(api);
    let addr = http.local_addr();

    let counter = obs::global().counter("bgp_selfmon_alert_total", "Alert-rule test traffic", &[]);
    // Baseline tick so the family has a previous value to delta from.
    recorder.tick();

    // Two consecutive over-threshold windows: the streak requirement.
    for _ in 0..2 {
        counter.add(10_000);
        std::thread::sleep(Duration::from_millis(2));
        recorder.tick();
    }
    assert_eq!(alerts.firing(), vec!["bgp_selfmon_alert_total_rate"]);
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"alert:bgp_selfmon_alert_total_rate\""),
        "{body}"
    );
    assert!(body.contains("\"status\":\"degraded\""), "{body}");

    // Quiet windows: the rule clears and /healthz drops the reason.
    for _ in 0..2 {
        std::thread::sleep(Duration::from_millis(2));
        recorder.tick();
    }
    assert!(alerts.firing().is_empty());
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(
        !body.contains("alert:bgp_selfmon_alert_total_rate"),
        "{body}"
    );
    http.shutdown();
}
