//! Hot-swap stress: N reader threads query the slot while the writer
//! seals epochs as fast as it can.
//!
//! Invariants under test:
//!
//! * **No mixed-epoch views** — every snapshot a reader obtains matches
//!   the fingerprint the writer computed for that exact version before
//!   publishing it (any cross-epoch tearing changes the fingerprint);
//! * **Monotone versions** — per reader, observed versions never
//!   decrease, and every observed version is one the writer published;
//! * **Immutability** — a retained snapshot's contents are identical
//!   before and after later seals.

use bgp_infer::counters::Thresholds;
use bgp_serve::prelude::*;
use bgp_stream::epoch::EpochPolicy;
use bgp_stream::ingest::StreamEvent;
use bgp_stream::pipeline::{StreamConfig, StreamPipeline};
use bgp_types::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const EPOCHS: u64 = 150;
const READERS: usize = 4;

/// Order-insensitive content fingerprint of a snapshot's record table,
/// mixed with its version so cross-version tearing cannot cancel out.
fn fingerprint(version: u64, records: &[bgp_infer::db::DbRecord]) -> u64 {
    let mut acc = version.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for r in records {
        let mut h = r.asn.0 as u64;
        h = h
            .wrapping_mul(31)
            .wrapping_add(r.counters.t)
            .wrapping_mul(31)
            .wrapping_add(r.counters.s)
            .wrapping_mul(31)
            .wrapping_add(r.counters.f)
            .wrapping_mul(31)
            .wrapping_add(r.counters.c)
            .wrapping_mul(31)
            .wrapping_add(r.class.as_str().as_bytes()[0] as u64);
        acc = acc.wrapping_add(h.wrapping_mul(0x100_0000_01b3));
    }
    acc
}

#[test]
fn readers_never_observe_mixed_epochs() {
    let slot = Arc::new(SnapshotSlot::new(Thresholds::default()));
    let fingerprints: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let slot = Arc::clone(&slot);
            let fingerprints = Arc::clone(&fingerprints);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reader = slot.reader();
                let mut last_version = 0u64;
                let mut observed = 0u64;
                let mut retained: Option<(Arc<ServeSnapshot>, u64)> = None;
                while !done.load(Ordering::Acquire) || last_version < EPOCHS {
                    let snap = Arc::clone(reader.current());
                    let version = snap.version();
                    assert!(
                        version >= last_version,
                        "version regressed: {last_version} -> {version}"
                    );
                    // Envelope consistency: version always equals the
                    // sealed epoch's version; the records table is the
                    // one sealed WITH that epoch (fingerprint match).
                    if version > 0 {
                        let epoch = snap.epoch.as_ref().expect("sealed snapshot has epoch");
                        assert_eq!(epoch.version, version);
                        assert_eq!(epoch.epoch + 1, version);
                        let expected = fingerprints
                            .lock()
                            .unwrap()
                            .get(&version)
                            .copied()
                            .unwrap_or_else(|| panic!("unpublished version {version}"));
                        assert_eq!(
                            fingerprint(version, &snap.records),
                            expected,
                            "mixed-epoch view at version {version}"
                        );
                        // Records stay sorted (binary-search contract).
                        assert!(snap.records.windows(2).all(|w| w[0].asn < w[1].asn));
                    }
                    // A retained snapshot must never change, no matter
                    // how many epochs seal after it.
                    if let Some((old, old_fp)) = &retained {
                        assert_eq!(fingerprint(old.version(), &old.records), *old_fp);
                    }
                    if version % 10 == 3 && retained.is_none() {
                        let fp = fingerprint(version, &snap.records);
                        retained = Some((snap, fp));
                    }
                    last_version = version;
                    observed += 1;
                    // Single-core CI: give the writer a turn.
                    std::thread::yield_now();
                }
                observed
            })
        })
        .collect();

    // The writer: seal an epoch per loop iteration, fingerprint it, then
    // publish. Shifting evidence per epoch keeps counters moving so a
    // torn view cannot accidentally fingerprint-match.
    let mut pipe = StreamPipeline::new(StreamConfig {
        shards: 2,
        epoch: EpochPolicy::manual(),
        ..Default::default()
    });
    let mut publisher = Publisher::new(Arc::clone(&slot), 1_000_000);
    for i in 0..EPOCHS {
        let asn = 2 + (i % 7) as u32;
        let tags: &[u32] = if i % 3 == 0 { &[] } else { &[asn] };
        let tuple = PathCommTuple::new(
            path(&[asn, 5, 900 + (i % 11) as u32]),
            CommunitySet::from_iter(
                tags.iter()
                    .map(|&a| AnyCommunity::tag_for(Asn(a), 100 + i as u32)),
            ),
        );
        pipe.push(StreamEvent::new(i, tuple));
        let sealed = pipe.seal_epoch();
        let records = bgp_infer::db::records(sealed.outcome().expect("manual seals keep outcomes"));
        fingerprints
            .lock()
            .unwrap()
            .insert(sealed.version, fingerprint(sealed.version, &records));
        publisher.sync(&pipe);
    }
    done.store(true, Ordering::Release);

    // Every reader loops until it has seen the final version, so joining
    // cleanly already proves full-version coverage; the count only
    // confirms they all actually iterated.
    let total_observed: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader ok"))
        .sum();
    assert!(
        total_observed >= READERS as u64,
        "({total_observed} observations)"
    );
    assert_eq!(slot.load().version(), EPOCHS);
}
