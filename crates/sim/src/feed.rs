//! Scenario-as-stream adapter: turn a materialized ground-truth dataset
//! into a live update feed.
//!
//! The batch experiments hand the engine a finished tuple vector; a
//! streaming consumer wants the same world delivered the way a collector
//! would see it — as timestamped re-announcements trickling in over a
//! day, with popular routes re-announced more than once and everything
//! interleaved by time. [`UpdateFeed`] produces exactly that,
//! deterministically per seed, so streaming runs are reproducible and
//! comparable against the batch engine on the identical tuple set.

use crate::scenario::GroundTruthDataset;
use bgp_types::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Default feed day start (2021-05-19T00:00:00Z, the paper's d_May21).
pub const FEED_DAY_START: u64 = 1_621_382_400;

/// A deterministic, time-ordered stream of `(timestamp, tuple)` events
/// over one simulated day.
#[derive(Debug, Clone)]
pub struct UpdateFeed {
    events: Vec<(u64, PathCommTuple)>,
    cursor: usize,
}

impl UpdateFeed {
    /// Build a feed from a dataset: every tuple is announced at least
    /// once, plus `0..=extra_repeats` pseudo-random re-announcements, all
    /// at pseudo-random offsets within the day, sorted by timestamp.
    pub fn new(ds: &GroundTruthDataset, seed: u64, extra_repeats: u32) -> Self {
        Self::from_tuples(&ds.tuples, seed, extra_repeats)
    }

    /// Build a feed from a raw tuple list (same semantics as
    /// [`UpdateFeed::new`]).
    pub fn from_tuples(tuples: &[PathCommTuple], seed: u64, extra_repeats: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_FEED);
        let mut events = Vec::with_capacity(tuples.len());
        for t in tuples {
            let repeats = 1 + if extra_repeats > 0 {
                rng.random_range(0..=extra_repeats)
            } else {
                0
            };
            for _ in 0..repeats {
                let ts = FEED_DAY_START + rng.random_range(0u64..86_400);
                events.push((ts, t.clone()));
            }
        }
        events.sort_by_key(|a| a.0);
        UpdateFeed { events, cursor: 0 }
    }

    /// Total events the feed will deliver.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the feed has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Borrow the full (already sorted) event list.
    pub fn events(&self) -> &[(u64, PathCommTuple)] {
        &self.events
    }
}

impl Iterator for UpdateFeed {
    type Item = (u64, PathCommTuple);

    fn next(&mut self) -> Option<Self::Item> {
        let ev = self.events.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples() -> Vec<PathCommTuple> {
        (0..50u32)
            .map(|i| {
                PathCommTuple::new(
                    path(&[10 + i % 5, 100 + i]),
                    CommunitySet::from_iter([AnyCommunity::tag_for(Asn(10 + i % 5), 100)]),
                )
            })
            .collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = UpdateFeed::from_tuples(&tuples(), 7, 3);
        let b = UpdateFeed::from_tuples(&tuples(), 7, 3);
        assert_eq!(a.events(), b.events());
        let c = UpdateFeed::from_tuples(&tuples(), 8, 3);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn covers_every_tuple_at_least_once() {
        let ts = tuples();
        let feed = UpdateFeed::from_tuples(&ts, 3, 2);
        assert!(feed.len() >= ts.len());
        for t in &ts {
            assert!(feed.events().iter().any(|(_, e)| e == t), "missing {t:?}");
        }
    }

    #[test]
    fn time_ordered_within_day() {
        let feed = UpdateFeed::from_tuples(&tuples(), 11, 4);
        let times: Vec<u64> = feed.events().iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times
            .iter()
            .all(|&t| (FEED_DAY_START..FEED_DAY_START + 86_400).contains(&t)));
    }

    #[test]
    fn iterator_drains() {
        let mut feed = UpdateFeed::from_tuples(&tuples(), 1, 0);
        let n = feed.len();
        assert_eq!(n, 50, "extra_repeats=0 delivers each tuple once");
        assert_eq!(feed.by_ref().count(), n);
        assert_eq!(feed.remaining(), 0);
    }
}
