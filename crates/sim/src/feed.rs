//! Scenario-as-stream adapter: turn a materialized ground-truth dataset
//! into a live update feed.
//!
//! The batch experiments hand the engine a finished tuple vector; a
//! streaming consumer wants the same world delivered the way a collector
//! would see it — as timestamped re-announcements trickling in over a
//! day, with popular routes re-announced more than once and everything
//! interleaved by time. [`UpdateFeed`] produces exactly that,
//! deterministically per seed, so streaming runs are reproducible and
//! comparable against the batch engine on the identical tuple set.

use crate::scenario::GroundTruthDataset;
use bgp_types::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Default feed day start (2021-05-19T00:00:00Z, the paper's d_May21).
pub const FEED_DAY_START: u64 = 1_621_382_400;

/// Churn overlays for adversarial soak feeds. Each mode only *adds*
/// re-announcements of tuples the base feed already delivers — the
/// unique tuple set (and therefore the converged classification) is
/// identical to [`Churn::Steady`], which is what makes churn feeds
/// usable as fault-soak inputs with a known-good final state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Churn {
    /// The plain feed: no extra churn.
    #[default]
    Steady,
    /// A flap storm: ~5% of tuples become "flappers", each re-announced
    /// many times inside a tight mid-day window — the classic
    /// dampening-bait burst.
    FlapStorm,
    /// A peer reset: one peer's entire table is re-announced back to
    /// back mid-day, the way a collector sees a session re-establish
    /// and replay its Adj-RIB-In.
    PeerReset,
}

/// A deterministic, time-ordered stream of `(timestamp, tuple)` events
/// over one simulated day.
#[derive(Debug, Clone)]
pub struct UpdateFeed {
    events: Vec<(u64, PathCommTuple)>,
    cursor: usize,
}

impl UpdateFeed {
    /// Build a feed from a dataset: every tuple is announced at least
    /// once, plus `0..=extra_repeats` pseudo-random re-announcements, all
    /// at pseudo-random offsets within the day, sorted by timestamp.
    pub fn new(ds: &GroundTruthDataset, seed: u64, extra_repeats: u32) -> Self {
        Self::from_tuples(&ds.tuples, seed, extra_repeats)
    }

    /// Like [`UpdateFeed::new`], with a [`Churn`] overlay on top.
    pub fn churned(ds: &GroundTruthDataset, seed: u64, extra_repeats: u32, churn: Churn) -> Self {
        Self::from_tuples_churned(&ds.tuples, seed, extra_repeats, churn)
    }

    /// Build a feed from a raw tuple list (same semantics as
    /// [`UpdateFeed::new`]).
    pub fn from_tuples(tuples: &[PathCommTuple], seed: u64, extra_repeats: u32) -> Self {
        Self::from_tuples_churned(tuples, seed, extra_repeats, Churn::Steady)
    }

    /// Build a feed from a raw tuple list with a [`Churn`] overlay. The
    /// base event stream is identical to the steady feed for the same
    /// seed; churn only appends duplicate re-announcements.
    pub fn from_tuples_churned(
        tuples: &[PathCommTuple],
        seed: u64,
        extra_repeats: u32,
        churn: Churn,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_FEED);
        let mut events = Vec::with_capacity(tuples.len());
        for t in tuples {
            let repeats = 1 + if extra_repeats > 0 {
                rng.random_range(0..=extra_repeats)
            } else {
                0
            };
            for _ in 0..repeats {
                let ts = FEED_DAY_START + rng.random_range(0u64..86_400);
                events.push((ts, t.clone()));
            }
        }
        match churn {
            Churn::Steady => {}
            Churn::FlapStorm => {
                // Every 20th tuple flaps: a burst of re-announcements
                // inside a one-hour mid-day window.
                for t in tuples.iter().step_by(20) {
                    let bursts = 8 + rng.random_range(0u32..8);
                    for _ in 0..bursts {
                        let ts = FEED_DAY_START + 40_000 + rng.random_range(0u64..3_600);
                        events.push((ts, t.clone()));
                    }
                }
            }
            Churn::PeerReset => {
                // The first tuple's peer resets mid-day and replays its
                // whole table back to back.
                if let Some(first) = tuples.first() {
                    let peer = first.path.peer();
                    let replay: Vec<&PathCommTuple> =
                        tuples.iter().filter(|t| t.path.peer() == peer).collect();
                    for (i, t) in replay.into_iter().enumerate() {
                        let ts = (FEED_DAY_START + 60_000 + i as u64).min(FEED_DAY_START + 86_399);
                        events.push((ts, (*t).clone()));
                    }
                }
            }
        }
        events.sort_by_key(|a| a.0);
        UpdateFeed { events, cursor: 0 }
    }

    /// Total events the feed will deliver.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the feed has no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Borrow the full (already sorted) event list.
    pub fn events(&self) -> &[(u64, PathCommTuple)] {
        &self.events
    }
}

impl Iterator for UpdateFeed {
    type Item = (u64, PathCommTuple);

    fn next(&mut self) -> Option<Self::Item> {
        let ev = self.events.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples() -> Vec<PathCommTuple> {
        (0..50u32)
            .map(|i| {
                PathCommTuple::new(
                    path(&[10 + i % 5, 100 + i]),
                    CommunitySet::from_iter([AnyCommunity::tag_for(Asn(10 + i % 5), 100)]),
                )
            })
            .collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = UpdateFeed::from_tuples(&tuples(), 7, 3);
        let b = UpdateFeed::from_tuples(&tuples(), 7, 3);
        assert_eq!(a.events(), b.events());
        let c = UpdateFeed::from_tuples(&tuples(), 8, 3);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn covers_every_tuple_at_least_once() {
        let ts = tuples();
        let feed = UpdateFeed::from_tuples(&ts, 3, 2);
        assert!(feed.len() >= ts.len());
        for t in &ts {
            assert!(feed.events().iter().any(|(_, e)| e == t), "missing {t:?}");
        }
    }

    #[test]
    fn time_ordered_within_day() {
        let feed = UpdateFeed::from_tuples(&tuples(), 11, 4);
        let times: Vec<u64> = feed.events().iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times
            .iter()
            .all(|&t| (FEED_DAY_START..FEED_DAY_START + 86_400).contains(&t)));
    }

    #[test]
    fn churn_only_adds_duplicates() {
        let ts = tuples();
        let steady = UpdateFeed::from_tuples(&ts, 7, 2);
        let uniq = |f: &UpdateFeed| {
            f.events()
                .iter()
                .map(|(_, t)| t.clone())
                .collect::<std::collections::BTreeSet<_>>()
        };
        for churn in [Churn::FlapStorm, Churn::PeerReset] {
            let churned = UpdateFeed::from_tuples_churned(&ts, 7, 2, churn);
            assert!(churned.len() > steady.len(), "{churn:?} adds events");
            // Same unique tuple set → same converged classification.
            assert_eq!(uniq(&steady), uniq(&churned), "{churn:?} changed tuples");
            // Still deterministic and time-ordered within the day.
            let again = UpdateFeed::from_tuples_churned(&ts, 7, 2, churn);
            assert_eq!(churned.events(), again.events());
            let times: Vec<u64> = churned.events().iter().map(|(t, _)| *t).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
            assert!(times
                .iter()
                .all(|&t| (FEED_DAY_START..FEED_DAY_START + 86_400).contains(&t)));
        }
    }

    #[test]
    fn iterator_drains() {
        let mut feed = UpdateFeed::from_tuples(&tuples(), 1, 0);
        let n = feed.len();
        assert_eq!(n, 50, "extra_repeats=0 delivers each tuple once");
        assert_eq!(feed.by_ref().count(), n);
        assert_eq!(feed.remaining(), 0);
    }
}
