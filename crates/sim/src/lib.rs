//! # bgp-sim
//!
//! Ground-truth community propagation for the IMC'21 reproduction,
//! implementing the paper's mental model (§3.3):
//!
//! ```text
//! output(A) = tagging(A) ∪ forwarding(A, input(A))
//! ```
//!
//! * [`role`] — tagger/silent × forward/cleaner roles, plus selective
//!   tagging policies conditioned on business relationships;
//! * [`propagate`] — computes `output(A1)` for every AS path;
//! * [`noise`] — the two §6.1 noise sources (action communities, spurious
//!   origin communities), deterministic under a seed;
//! * [`scenario`] — the six §6 verification scenarios (`alltf`, `alltc`,
//!   `random`, `random+noise`, `random-p`, `random-pp`);
//! * [`visibility`] — ground-truth hidden/leaf annotation for the
//!   confusion matrices of Tables 5/6;
//! * [`peering`] — the §7.4 PEERING testbed analogue.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod feed;
pub mod noise;
pub mod peering;
pub mod propagate;
pub mod role;
pub mod scenario;
pub mod visibility;

/// Commonly used items.
pub mod prelude {
    pub use crate::feed::{Churn, UpdateFeed, FEED_DAY_START};
    pub use crate::noise::NoiseModel;
    pub use crate::peering::{pop_communities, PeeringExperiment, PeeringObservation, PEERING_ASN};
    pub use crate::propagate::{tag_community, Propagator, TAG_VALUE};
    pub use crate::role::{
        ForwardingBehavior, Role, RoleAssignment, SelectivePolicy, TaggingBehavior,
    };
    pub use crate::scenario::{GroundTruthDataset, Scenario};
    pub use crate::visibility::Visibility;
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use bgp_topology::prelude::*;
    use bgp_types::prelude::*;
    use proptest::prelude::*;

    fn world(seed: u64) -> (AsGraph, Vec<AsPath>) {
        let mut cfg = TopologyConfig::small();
        cfg.transit = 25;
        cfg.edge = 60;
        cfg.collector_peers = 8;
        let g = cfg.seed(seed).build();
        let origins: Vec<NodeId> = g.node_ids().collect();
        let s = PathSubstrate::generate_for_origins(&g, &origins, 2);
        (g, s.paths)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Model invariant: an AS's community never appears upstream of a
        /// cleaner that sits between it and the collector (noise-free).
        #[test]
        fn cleaner_blocks_downstream_tags(seed in 0u64..200) {
            let (g, paths) = world(seed);
            let ds = Scenario::Random.materialize(&g, &paths, seed);
            for t in &ds.tuples {
                let asns = t.path.asns();
                for (i, &a) in asns.iter().enumerate() {
                    // If any AS strictly upstream of position i is a
                    // cleaner, a's tag cannot be in the output. Paths are
                    // simple, so `a` cannot also sit upstream of the
                    // cleaner.
                    let blocked = asns[..i].iter().any(|&u| !ds.roles.role(u).is_forward());
                    prop_assert!(
                        !(blocked && t.comm.contains_upper(a)),
                        "tag of {} leaked past a cleaner on {}", a, t.path
                    );
                }
            }
        }

        /// Silent ASes never contribute their own community (noise-free).
        #[test]
        fn silent_never_tags(seed in 0u64..200) {
            let (g, paths) = world(seed);
            let ds = Scenario::Random.materialize(&g, &paths, seed);
            for t in &ds.tuples {
                for &a in t.path.asns() {
                    if ds.roles.role(a) == Role::SF || ds.roles.role(a) == Role::SC {
                        prop_assert!(!t.comm.contains_upper(a),
                            "silent {} appears in {}", a, t.comm);
                    }
                }
            }
        }

        /// The peer's own tag is always present when the peer is a tagger:
        /// nothing upstream of A1 can clean it.
        #[test]
        fn peer_tagger_always_visible(seed in 0u64..200) {
            let (g, paths) = world(seed);
            let ds = Scenario::Random.materialize(&g, &paths, seed);
            for t in &ds.tuples {
                if ds.roles.role(t.path.peer()).is_tagger() {
                    prop_assert!(t.comm.contains_upper(t.path.peer()));
                }
            }
        }
    }
}
