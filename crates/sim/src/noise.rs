//! The §6.1 noise model.
//!
//! Two noise sources stress the inference:
//!
//! 1. **Action communities** — ~50% of ASes are designated *noisy*; with 5%
//!    probability (per path occurrence) such an AS attaches a community
//!    whose upper field is its *upstream neighbor's* ASN. At the collector
//!    this makes a silent upstream AS look like a tagger.
//! 2. **Origin communities** — with 5% probability per tuple, a community
//!    carrying the *originator's* ASN appears in the final update
//!    regardless of on-path cleaning, contradicting cleaner inferences.
//!
//! Both decisions are derived from a keyed hash of (seed, AS, path) so the
//! whole data generation stays deterministic under a fixed seed — no RNG
//! state threading through the propagation hot path.

use bgp_types::prelude::*;
use std::collections::HashSet;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Configuration and state for noise injection.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// ASes that may emit action communities (the "50% of all ASes").
    noisy: HashSet<Asn>,
    /// Per-occurrence probability of noise source 1.
    pub action_prob: f64,
    /// Per-tuple probability of noise source 2.
    pub origin_prob: f64,
    seed: u64,
}

impl NoiseModel {
    /// Paper defaults: 50% of ASes noisy, both sources at 5%.
    pub fn paper_defaults<I: IntoIterator<Item = Asn>>(all_asns: I, seed: u64) -> Self {
        let noisy = all_asns
            .into_iter()
            .filter(|a| stable_hash((seed, 0xA5u8, a.0)) % 2 == 0)
            .collect();
        NoiseModel {
            noisy,
            action_prob: 0.05,
            origin_prob: 0.05,
            seed,
        }
    }

    /// A noise model that never fires (for differential tests).
    pub fn disabled() -> Self {
        NoiseModel {
            noisy: HashSet::new(),
            action_prob: 0.0,
            origin_prob: 0.0,
            seed: 0,
        }
    }

    /// Number of noisy ASes.
    pub fn noisy_count(&self) -> usize {
        self.noisy.len()
    }

    /// Whether an AS is in the noisy set.
    pub fn is_noisy(&self, asn: Asn) -> bool {
        self.noisy.contains(&asn)
    }

    /// Noise source 1: does `asn` (at 1-based position `x` of `path`)
    /// attach an action community defined by its upstream neighbor?
    pub fn action_community_fires(&self, asn: Asn, path: &AsPath, x: usize) -> bool {
        if !self.noisy.contains(&asn) {
            return false;
        }
        let h = stable_hash((self.seed, 0x01u8, asn.0, path.asns(), x));
        prob_hit(h, self.action_prob)
    }

    /// Noise source 2: does this tuple carry a spurious origin community?
    pub fn origin_community_fires(&self, path: &AsPath) -> bool {
        let h = stable_hash((self.seed, 0x02u8, path.asns()));
        prob_hit(h, self.origin_prob)
    }
}

fn stable_hash<T: Hash>(value: T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

fn prob_hit(hash: u64, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    // Map the hash to [0, 1).
    (hash as f64 / u64::MAX as f64) < prob
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asns(n: u32) -> Vec<Asn> {
        (1..=n).map(Asn).collect()
    }

    #[test]
    fn roughly_half_noisy() {
        let m = NoiseModel::paper_defaults(asns(10_000), 1);
        let share = m.noisy_count() as f64 / 10_000.0;
        assert!((0.45..0.55).contains(&share), "noisy share {share}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = NoiseModel::paper_defaults(asns(100), 7);
        let b = NoiseModel::paper_defaults(asns(100), 7);
        let p = path(&[1, 2, 3]);
        for x in 1..=3 {
            for asn in 1..=100u32 {
                assert_eq!(
                    a.action_community_fires(Asn(asn), &p, x),
                    b.action_community_fires(Asn(asn), &p, x)
                );
            }
        }
        assert_eq!(a.origin_community_fires(&p), b.origin_community_fires(&p));
    }

    #[test]
    fn seeds_differ() {
        let a = NoiseModel::paper_defaults(asns(2_000), 1);
        let b = NoiseModel::paper_defaults(asns(2_000), 2);
        let same = (1..=2_000u32)
            .filter(|&v| a.is_noisy(Asn(v)) == b.is_noisy(Asn(v)))
            .count();
        assert!(same < 1_900, "noisy sets nearly identical across seeds");
    }

    #[test]
    fn fire_rate_near_five_percent() {
        let m = NoiseModel::paper_defaults(asns(10), 3);
        let noisy: Vec<Asn> = (1..=10u32).map(Asn).filter(|&a| m.is_noisy(a)).collect();
        assert!(!noisy.is_empty());
        let trials = 20_000;
        let mut hits = 0;
        for i in 0..trials {
            let p = path(&[1_000 + i, 2_000 + i, noisy[0].0]);
            if m.action_community_fires(noisy[0], &p, 3) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((0.03..0.07).contains(&rate), "action rate {rate}");
    }

    #[test]
    fn disabled_never_fires() {
        let m = NoiseModel::disabled();
        let p = path(&[1, 2, 3]);
        assert!(!m.action_community_fires(Asn(1), &p, 1));
        assert!(!m.origin_community_fires(&p));
        assert_eq!(m.noisy_count(), 0);
    }

    #[test]
    fn non_noisy_as_never_fires_action() {
        let m = NoiseModel::paper_defaults(asns(100), 5);
        let quiet = (1..=100u32).map(Asn).find(|&a| !m.is_noisy(a)).unwrap();
        for i in 0..1_000u32 {
            let p = path(&[500 + i, quiet.0, 900]);
            assert!(!m.action_community_fires(quiet, &p, 2));
        }
    }
}
