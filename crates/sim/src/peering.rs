//! PEERING testbed analogue (paper §7.4).
//!
//! The paper validates inferences by announcing a /24 they control from the
//! PEERING testbed (AS 47065) via 12 Points of Presence, attaching a unique
//! pair of communities per PoP, and checking logical consistency at the
//! collectors: if the communities are missing, some on-path AS must be a
//! cleaner; if they are present, no on-path AS may be a cleaner.
//!
//! Here we graft a testbed AS onto an existing simulated Internet (with its
//! ground-truth roles), announce through `n_pops` upstream attachment
//! points, and record what each collector peer sees.

use crate::propagate::Propagator;
use crate::role::RoleAssignment;
use bgp_topology::prelude::*;
use bgp_types::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The PEERING testbed ASN.
pub const PEERING_ASN: Asn = Asn(47065);

/// One observation of the testbed prefix at a collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeeringObservation {
    /// The AS path from collector peer to the testbed origin.
    pub path: AsPath,
    /// The community set received.
    pub comm: CommunitySet,
    /// Index of the PoP the route egressed through.
    pub pop: usize,
    /// Whether the testbed's own communities survived to the collector.
    pub our_communities_present: bool,
}

/// Result of one testbed experiment.
#[derive(Debug, Clone)]
pub struct PeeringExperiment {
    /// The grafted topology (original graph + testbed node).
    pub graph: AsGraph,
    /// PoP attachment providers (ASNs).
    pub pops: Vec<Asn>,
    /// Everything the collectors saw.
    pub observations: Vec<PeeringObservation>,
}

/// The community pair announced via PoP `i`.
pub fn pop_communities(pop: usize) -> [AnyCommunity; 2] {
    let base = (pop as u32) * 2 + 1;
    [
        AnyCommunity::regular(PEERING_ASN.0 as u16, base as u16),
        AnyCommunity::regular(PEERING_ASN.0 as u16, (base + 1) as u16),
    ]
}

impl PeeringExperiment {
    /// Run the experiment: graft the testbed AS below `n_pops` transit
    /// providers (chosen seeded), announce, and collect observations.
    ///
    /// `roles` must cover every AS of `base` — the testbed AS itself needs
    /// no role (its tagging is the experiment's community injection).
    pub fn run(base: &AsGraph, roles: &RoleAssignment, n_pops: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = base.clone();

        // Choose PoP providers among transit ASes (prefer well-connected).
        let mut transit: Vec<NodeId> = graph
            .node_ids()
            .filter(|&id| !graph.is_stub(id) && graph.node(id).tier != Tier::Edge)
            .collect();
        transit.shuffle(&mut rng);
        let pop_ids: Vec<NodeId> = transit.into_iter().take(n_pops).collect();
        assert!(
            !pop_ids.is_empty(),
            "topology has no transit ASes to attach to"
        );

        let origin = graph.add_node(PEERING_ASN, Tier::Edge);
        for &p in &pop_ids {
            graph.add_edge(origin, p, Relationship::CustomerToProvider);
        }

        // Route from everyone to the testbed origin.
        let tree = RoutingTree::compute(&graph, origin);
        let prop = Propagator::new(base, roles);

        let mut observations = Vec::new();
        for peer in graph.collector_peer_ids() {
            let Some(path) = tree.as_path(&graph, peer) else {
                continue;
            };
            if path.len() < 2 {
                continue; // the origin itself peering with a collector
            }
            // The PoP is the AS right before the origin on the path.
            let pop_asn = path.at(path.len() - 1).expect("n-1 within path");
            let pop = pop_ids
                .iter()
                .position(|&id| graph.asn_of(id) == pop_asn)
                .expect("next hop from origin is an attachment PoP");

            let comm = Self::propagate(&prop, &path, pop);
            let ours = pop_communities(pop);
            let present = comm.contains(&ours[0]) || comm.contains(&ours[1]);
            observations.push(PeeringObservation {
                path,
                comm,
                pop,
                our_communities_present: present,
            });
        }

        let pops = pop_ids.iter().map(|&id| graph.asn_of(id)).collect();
        PeeringExperiment {
            graph,
            pops,
            observations,
        }
    }

    /// Propagate the testbed announcement along `path` (peer..origin):
    /// the origin contributes the PoP community pair; every other AS
    /// applies its ground-truth role exactly as in [`Propagator`].
    fn propagate(prop: &Propagator<'_>, path: &AsPath, pop: usize) -> CommunitySet {
        let asns = path.asns();
        let n = asns.len();
        let mut acc = CommunitySet::from_iter(pop_communities(pop));

        // Positions n-1 down to 1 are regular ASes (position n is origin).
        for x in (1..n).rev() {
            let ax = asns[x - 1];
            let receiver = if x == 1 { None } else { Some(asns[x - 2]) };
            if !prop.forwards_on_edge(ax, receiver) {
                acc.clear();
            }
            if prop.tags_on_edge(ax, receiver) {
                acc.insert(crate::propagate::tag_community(ax));
            }
        }
        acc
    }

    /// Unique `(path, comm)` observations (the paper deduplicates before
    /// the consistency check).
    pub fn unique_observations(&self) -> Vec<&PeeringObservation> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for o in &self.observations {
            if seen.insert((o.path.clone(), o.comm.clone())) {
                out.push(o);
            }
        }
        out
    }

    /// Ground-truth check: does `path` contain a cleaner (excluding the
    /// origin, whose forwarding is irrelevant)?
    pub fn path_has_cleaner(&self, roles: &RoleAssignment, path: &AsPath) -> bool {
        let asns = path.asns();
        asns[..asns.len() - 1]
            .iter()
            .any(|&a| !roles.role(a).is_forward())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn world() -> (AsGraph, RoleAssignment) {
        let mut cfg = TopologyConfig::small();
        cfg.transit = 50;
        cfg.edge = 150;
        cfg.collector_peers = 15;
        let g = cfg.seed(8).build();
        let roles = Scenario::Random.assign_roles(&g, 8);
        (g, roles)
    }

    #[test]
    fn experiment_produces_observations() {
        let (g, roles) = world();
        let exp = PeeringExperiment::run(&g, &roles, 6, 1);
        assert_eq!(exp.pops.len(), 6);
        assert!(!exp.observations.is_empty());
        // Every observed path ends at the testbed.
        for o in &exp.observations {
            assert_eq!(o.path.origin(), PEERING_ASN);
        }
    }

    #[test]
    fn consistency_with_ground_truth() {
        // The core §7.4 invariant, checked against ground truth (not
        // inference): our communities present <=> no cleaner on path.
        let (g, roles) = world();
        let exp = PeeringExperiment::run(&g, &roles, 8, 2);
        for o in &exp.observations {
            let has_cleaner = exp.path_has_cleaner(&roles, &o.path);
            assert_eq!(
                o.our_communities_present, !has_cleaner,
                "path {} comm {} cleaner={}",
                o.path, o.comm, has_cleaner
            );
        }
    }

    #[test]
    fn all_forward_world_preserves_communities() {
        let (g, _) = world();
        let roles = Scenario::AllTf.assign_roles(&g, 1);
        let exp = PeeringExperiment::run(&g, &roles, 4, 3);
        assert!(!exp.observations.is_empty());
        for o in &exp.observations {
            assert!(o.our_communities_present);
        }
    }

    #[test]
    fn all_cleaner_world_strips_communities() {
        let (g, _) = world();
        let roles = Scenario::AllTc.assign_roles(&g, 1);
        let exp = PeeringExperiment::run(&g, &roles, 4, 3);
        for o in &exp.observations {
            // Paths of length 2 are peer->origin: the peer cleans.
            assert!(!o.our_communities_present);
        }
    }

    #[test]
    fn pop_communities_unique_per_pop() {
        let a = pop_communities(0);
        let b = pop_communities(1);
        assert_ne!(a, b);
        for c in a.iter().chain(b.iter()) {
            assert_eq!(c.upper_field(), PEERING_ASN);
        }
    }

    #[test]
    fn deterministic() {
        let (g, roles) = world();
        let a = PeeringExperiment::run(&g, &roles, 5, 9);
        let b = PeeringExperiment::run(&g, &roles, 5, 9);
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.pops, b.pops);
    }

    #[test]
    fn unique_observations_dedup() {
        let (g, roles) = world();
        let exp = PeeringExperiment::run(&g, &roles, 5, 4);
        let uniq = exp.unique_observations();
        assert!(uniq.len() <= exp.observations.len());
    }
}
