//! Community propagation along AS paths per the paper's formal model
//! (§3.3.2):
//!
//! ```text
//! output(A) = tagging(A) ∪ forwarding(A, input(A))
//! input(Ax) = output(Ax+1)
//! ```
//!
//! Given a path `A1..An` and ground-truth roles, this computes
//! `output(A1)` — the community set a route collector records — walking
//! from the origin upstream. Selective taggers consult the business
//! relationship toward the *receiving* neighbor (or the collector for
//! `A1`), and the optional noise model injects the two §6.1 noise sources.

use crate::noise::NoiseModel;
use crate::role::{ForwardingBehavior, RoleAssignment, TaggingBehavior};
use bgp_topology::prelude::*;
use bgp_types::prelude::*;

/// The community value a tagger attaches (the low-order part). One
/// informational community per tagger keeps dataset sizes interpretable;
/// the inference only tests upper-field membership, so richer values would
/// not change any result.
pub const TAG_VALUE: u32 = 100;

/// Compute the canonical community a tagger AS emits.
pub fn tag_community(asn: Asn) -> AnyCommunity {
    AnyCommunity::tag_for(asn, TAG_VALUE)
}

/// Propagation engine: computes `output(A1)` for paths over a topology.
pub struct Propagator<'a> {
    graph: &'a AsGraph,
    roles: &'a RoleAssignment,
    noise: Option<&'a NoiseModel>,
}

impl<'a> Propagator<'a> {
    /// Build a propagator without noise.
    pub fn new(graph: &'a AsGraph, roles: &'a RoleAssignment) -> Self {
        Propagator {
            graph,
            roles,
            noise: None,
        }
    }

    /// Attach a noise model.
    pub fn with_noise(mut self, noise: &'a NoiseModel) -> Self {
        self.noise = Some(noise);
        self
    }

    /// The ground-truth role assignment this propagator uses.
    pub fn roles(&self) -> &RoleAssignment {
        self.roles
    }

    /// The topology this propagator resolves relationships against.
    pub fn graph(&self) -> &AsGraph {
        self.graph
    }

    /// The relationship of `sender` toward `receiver` (how the receiver is
    /// related *from the sender's view*), or `None` when the receiver is
    /// the collector.
    fn receiver_kind(&self, sender: Asn, receiver: Option<Asn>) -> Option<EdgeKind> {
        let receiver = receiver?;
        let s = self.graph.id_of(sender)?;
        let r = self.graph.id_of(receiver)?;
        self.graph.relationship(s, r)
    }

    /// Whether `asn` adds its own communities when announcing to
    /// `receiver` (`None` = collector).
    pub fn tags_on_edge(&self, asn: Asn, receiver: Option<Asn>) -> bool {
        match self.roles.role(asn).tagging {
            TaggingBehavior::Tagger => true,
            TaggingBehavior::Silent => false,
            TaggingBehavior::Selective(policy) => {
                policy.tags_toward(self.receiver_kind(asn, receiver))
            }
        }
    }

    /// Whether `asn` forwards foreign communities when announcing to
    /// `receiver` (`None` = collector). Selective forwarders reuse the
    /// tagging policy vocabulary: they forward on sessions the policy
    /// "tags toward" and clean elsewhere.
    pub fn forwards_on_edge(&self, asn: Asn, receiver: Option<Asn>) -> bool {
        match self.roles.role(asn).forwarding {
            ForwardingBehavior::Forward => true,
            ForwardingBehavior::Cleaner => false,
            ForwardingBehavior::SelectiveForward(policy) => {
                policy.tags_toward(self.receiver_kind(asn, receiver))
            }
        }
    }

    /// Compute `output(A1)` for one path.
    ///
    /// Walk from the origin `An` upstream to `A1`; at each hop `Ax`:
    ///
    /// 1. if `Ax` is a cleaner, drop the accumulated set (forwarding(∅));
    /// 2. if `Ax` tags toward its receiver (`Ax-1`, or the collector when
    ///    `x == 1`), union in `Ax:*`;
    /// 3. apply per-hop noise if configured.
    pub fn output(&self, path: &AsPath) -> CommunitySet {
        let asns = path.asns();
        let n = asns.len();
        let mut acc = CommunitySet::new();

        // Iterate x = n down to 1 (1-based); receiver of Ax is A(x-1) or
        // the collector for x == 1.
        for x in (1..=n).rev() {
            let ax = asns[x - 1];
            let receiver = if x == 1 { None } else { Some(asns[x - 2]) };

            // forwarding(Ax, input): cleaning empties the inherited set
            // (edge-aware for the selective-forwarding extension).
            if !self.forwards_on_edge(ax, receiver) {
                acc.clear();
            }

            // tagging(Ax): union own communities if tagging toward receiver.
            if self.tags_on_edge(ax, receiver) {
                acc.insert(tag_community(ax));
            }

            // Noise source 1 (§6.1): a "noisy" AS occasionally attaches an
            // action community defined by its upstream neighbor.
            if let Some(noise) = self.noise {
                if let Some(upstream) = receiver {
                    if noise.action_community_fires(ax, path, x) {
                        acc.insert(tag_community(upstream));
                    }
                }
            }
        }

        // Noise source 2 (§6.1): a community carrying the originator's ASN
        // appears in the update regardless of on-path cleaning.
        if let Some(noise) = self.noise {
            if noise.origin_community_fires(path) {
                acc.insert(tag_community(path.origin()));
            }
        }

        acc
    }

    /// Compute tuples for a whole substrate (borrowed paths).
    ///
    /// Parallelizes across scoped worker threads for large substrates;
    /// output order always matches `paths` order.
    pub fn tuples(&self, paths: &[AsPath]) -> Vec<PathCommTuple> {
        const PARALLEL_MIN: usize = 8_192;
        if paths.len() < PARALLEL_MIN {
            return paths
                .iter()
                .map(|p| PathCommTuple::new(p.clone(), self.output(p)))
                .collect();
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let chunk = paths.len().div_ceil(threads);
        let mut out = Vec::with_capacity(paths.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = paths
                .chunks(chunk)
                .map(|shard| {
                    s.spawn(move || {
                        shard
                            .iter()
                            .map(|p| PathCommTuple::new(p.clone(), self.output(p)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("propagation worker panicked"));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::{Role, SelectivePolicy};
    use bgp_topology::prelude::{Relationship, Tier};

    /// Chain topology peer <- mid <- origin with explicit roles.
    fn chain(roles: [Role; 3]) -> (AsGraph, RoleAssignment, AsPath) {
        let mut g = AsGraph::new();
        let a = g.add_node(Asn(10), Tier::Transit); // A1 peer
        let b = g.add_node(Asn(20), Tier::Transit); // A2
        let c = g.add_node(Asn(30), Tier::Edge); // A3 origin
        g.add_edge(b, a, Relationship::CustomerToProvider);
        g.add_edge(c, b, Relationship::CustomerToProvider);
        let mut ra = RoleAssignment::new();
        ra.set(Asn(10), roles[0]);
        ra.set(Asn(20), roles[1]);
        ra.set(Asn(30), roles[2]);
        (g, ra, path(&[10, 20, 30]))
    }

    #[test]
    fn all_taggers_forward_everything() {
        let (g, ra, p) = chain([Role::TF, Role::TF, Role::TF]);
        let out = Propagator::new(&g, &ra).output(&p);
        assert_eq!(out.len(), 3);
        for asn in [10u32, 20, 30] {
            assert!(out.contains_upper(Asn(asn)), "missing {asn}:*");
        }
    }

    #[test]
    fn cleaner_hides_downstream() {
        // A2 is a cleaner: origin's tag never reaches the collector, but
        // A2's own tag (added when sending to A1) does.
        let (g, ra, p) = chain([Role::TF, Role::TC, Role::TF]);
        let out = Propagator::new(&g, &ra).output(&p);
        assert!(!out.contains_upper(Asn(30)));
        assert!(out.contains_upper(Asn(20)));
        assert!(out.contains_upper(Asn(10)));
    }

    #[test]
    fn peer_cleaner_empties_everything_but_own_tag() {
        let (g, ra, p) = chain([Role::TC, Role::TF, Role::TF]);
        let out = Propagator::new(&g, &ra).output(&p);
        assert_eq!(out.len(), 1);
        assert!(out.contains_upper(Asn(10)));
    }

    #[test]
    fn silent_cleaner_outputs_empty() {
        let (g, ra, p) = chain([Role::SC, Role::TF, Role::TF]);
        let out = Propagator::new(&g, &ra).output(&p);
        assert!(out.is_empty());
    }

    #[test]
    fn silent_forward_passes_through() {
        let (g, ra, p) = chain([Role::SF, Role::SF, Role::TF]);
        let out = Propagator::new(&g, &ra).output(&p);
        assert_eq!(out.len(), 1);
        assert!(out.contains_upper(Asn(30)));
    }

    #[test]
    fn selective_no_provider_skips_provider_edge() {
        // A3 (origin) is a selective NoProvider tagger; A2 is its provider,
        // so no tag on the A3->A2 edge.
        let sel = Role {
            tagging: TaggingBehavior::Selective(SelectivePolicy::NoProvider),
            forwarding: ForwardingBehavior::Forward,
        };
        let (g, ra, p) = chain([Role::SF, Role::SF, sel]);
        let out = Propagator::new(&g, &ra).output(&p);
        assert!(!out.contains_upper(Asn(30)));
    }

    #[test]
    fn selective_tags_collector_session() {
        // A1 is selective NoProvider: receiver is the collector -> tags.
        let sel = Role {
            tagging: TaggingBehavior::Selective(SelectivePolicy::NoProvider),
            forwarding: ForwardingBehavior::Forward,
        };
        let (g, ra, p) = chain([sel, Role::SF, Role::SF]);
        let out = Propagator::new(&g, &ra).output(&p);
        assert!(out.contains_upper(Asn(10)));
    }

    #[test]
    fn selective_no_provider_tags_peer_edge() {
        // Build peer <-peer- mid so the selective mid tags toward a peer.
        let mut g = AsGraph::new();
        let a = g.add_node(Asn(10), Tier::Transit);
        let b = g.add_node(Asn(20), Tier::Transit);
        let c = g.add_node(Asn(30), Tier::Edge);
        g.add_edge(a, b, Relationship::PeerToPeer);
        g.add_edge(c, b, Relationship::CustomerToProvider);
        let sel = Role {
            tagging: TaggingBehavior::Selective(SelectivePolicy::NoProvider),
            forwarding: ForwardingBehavior::Forward,
        };
        let mut ra = RoleAssignment::new();
        ra.set(Asn(10), Role::SF);
        ra.set(Asn(20), sel);
        ra.set(Asn(30), Role::SF);
        let out = Propagator::new(&g, &ra).output(&path(&[10, 20, 30]));
        assert!(out.contains_upper(Asn(20)), "NoProvider tags toward peers");

        // NoProviderNoPeer must not tag toward a peer.
        let sel2 = Role {
            tagging: TaggingBehavior::Selective(SelectivePolicy::NoProviderNoPeer),
            forwarding: ForwardingBehavior::Forward,
        };
        ra.set(Asn(20), sel2);
        let out2 = Propagator::new(&g, &ra).output(&path(&[10, 20, 30]));
        assert!(!out2.contains_upper(Asn(20)));
    }

    #[test]
    fn selective_forwarding_extension_edge_aware() {
        // A2 forwards toward customers/collectors but cleans toward its
        // provider A1' — model: SelectiveForward(NoProvider) cleans when
        // the receiver is a provider.
        use crate::role::ForwardingBehavior;
        let sel_fwd = Role {
            tagging: TaggingBehavior::Silent,
            forwarding: ForwardingBehavior::SelectiveForward(SelectivePolicy::NoProvider),
        };
        // Chain: A1 (provider of A2) <- A2 <- A3 (tagger origin).
        let (g, mut ra, p) = chain([Role::SF, Role::SF, Role::TF]);
        ra.set(Asn(20), sel_fwd);
        let out = Propagator::new(&g, &ra).output(&p);
        // A2 sends to A1, its provider -> cleans -> A3's tag gone.
        assert!(
            !out.contains_upper(Asn(30)),
            "selective forwarder must clean toward provider"
        );

        // Same AS as collector peer: receiver is the collector -> forwards.
        let direct = path(&[20, 30]);
        let out2 = Propagator::new(&g, &ra).output(&direct);
        assert!(
            out2.contains_upper(Asn(30)),
            "selective forwarder forwards to collectors"
        );
    }

    #[test]
    fn tag_community_uses_right_variant() {
        assert!(!tag_community(Asn(3356)).is_large());
        assert!(tag_community(Asn(200_000)).is_large());
        assert_eq!(tag_community(Asn(3356)).upper_field(), Asn(3356));
    }

    #[test]
    fn parallel_tuples_match_serial_order() {
        // Build >8192 paths to cross the parallel threshold; outputs must
        // be identical and in input order.
        let (g, ra, _) = chain([Role::TF, Role::TF, Role::TF]);
        let paths: Vec<AsPath> = (0..9_000)
            .map(|i| {
                // Rotate between the chain's three single/multi-hop paths.
                match i % 3 {
                    0 => path(&[10]),
                    1 => path(&[10, 20]),
                    _ => path(&[10, 20, 30]),
                }
            })
            .collect();
        let prop = Propagator::new(&g, &ra);
        let batch = prop.tuples(&paths);
        assert_eq!(batch.len(), paths.len());
        for (t, p) in batch.iter().zip(&paths) {
            assert_eq!(&t.path, p);
            assert_eq!(t.comm, prop.output(p));
        }
    }

    #[test]
    fn tuples_batch_matches_single() {
        let (g, ra, p) = chain([Role::TF, Role::TF, Role::TF]);
        let prop = Propagator::new(&g, &ra);
        let batch = prop.tuples(std::slice::from_ref(&p));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].comm, prop.output(&p));
    }
}
