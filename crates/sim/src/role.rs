//! Ground-truth community-usage roles (the paper's mental model, §3.3).
//!
//! Every AS has a **tagging** behavior (does it add its own communities on
//! external sessions?) and a **forwarding** behavior (does it pass on
//! communities set by others?). Scenarios in §6 additionally use
//! *selective* taggers that tag only on some relationship types.

use bgp_topology::prelude::EdgeKind;
use bgp_types::prelude::*;
use std::collections::HashMap;

/// Relationship-conditional tagging policy for selective taggers (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectivePolicy {
    /// Tag on customer, peer and collector sessions — not toward providers
    /// (scenario `random-p`).
    NoProvider,
    /// Tag on customer and collector sessions only (scenario `random-pp`).
    NoProviderNoPeer,
    /// Tag only toward route collectors, never toward any AS neighbor
    /// (the worst-case of §5.4).
    CollectorOnly,
}

impl SelectivePolicy {
    /// Whether an AS with this policy tags an announcement it is sending to
    /// a neighbor related as `receiver` (from the sender's perspective), or
    /// to a collector when `receiver` is `None`.
    pub fn tags_toward(self, receiver: Option<EdgeKind>) -> bool {
        match (self, receiver) {
            // Collector sessions are always tagged in the paper's scenarios.
            (_, None) => true,
            (SelectivePolicy::NoProvider, Some(EdgeKind::Provider)) => false,
            (SelectivePolicy::NoProvider, Some(_)) => true,
            (SelectivePolicy::NoProviderNoPeer, Some(EdgeKind::Customer)) => true,
            (SelectivePolicy::NoProviderNoPeer, Some(_)) => false,
            (SelectivePolicy::CollectorOnly, Some(_)) => false,
        }
    }
}

/// Tagging behavior of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaggingBehavior {
    /// Consistently adds own communities on all external sessions.
    Tagger,
    /// Never emits own communities on external sessions.
    Silent,
    /// Tags only on sessions allowed by the policy.
    Selective(SelectivePolicy),
}

/// Forwarding behavior of an AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForwardingBehavior {
    /// Passes on communities set by other ASes.
    Forward,
    /// Strips all received communities.
    Cleaner,
    /// Extension beyond the paper's evaluated scenarios (§5.4 notes ASes
    /// "may add own and remove other communities selectively, e.g., on a
    /// per-session basis"): forwards only toward receivers the policy
    /// allows, cleans otherwise.
    SelectiveForward(SelectivePolicy),
}

/// The complete ground-truth role of one AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Role {
    /// Tagging side.
    pub tagging: TaggingBehavior,
    /// Forwarding side.
    pub forwarding: ForwardingBehavior,
}

impl Role {
    /// `tf` — tagger-forward.
    pub const TF: Role = Role {
        tagging: TaggingBehavior::Tagger,
        forwarding: ForwardingBehavior::Forward,
    };
    /// `tc` — tagger-cleaner.
    pub const TC: Role = Role {
        tagging: TaggingBehavior::Tagger,
        forwarding: ForwardingBehavior::Cleaner,
    };
    /// `sf` — silent-forward.
    pub const SF: Role = Role {
        tagging: TaggingBehavior::Silent,
        forwarding: ForwardingBehavior::Forward,
    };
    /// `sc` — silent-cleaner.
    pub const SC: Role = Role {
        tagging: TaggingBehavior::Silent,
        forwarding: ForwardingBehavior::Cleaner,
    };

    /// Short name like `tf` / `tc` / `sf` / `sc`; selective taggers render
    /// as `Tf`/`Tc` (capital T marks selectivity).
    pub fn short(&self) -> String {
        let t = match self.tagging {
            TaggingBehavior::Tagger => 't',
            TaggingBehavior::Silent => 's',
            TaggingBehavior::Selective(_) => 'T',
        };
        let f = match self.forwarding {
            ForwardingBehavior::Forward => 'f',
            ForwardingBehavior::Cleaner => 'c',
            ForwardingBehavior::SelectiveForward(_) => 'F',
        };
        format!("{t}{f}")
    }

    /// Whether the AS is a (consistent) tagger.
    pub fn is_tagger(&self) -> bool {
        self.tagging == TaggingBehavior::Tagger
    }

    /// Whether the AS is selective.
    pub fn is_selective(&self) -> bool {
        matches!(self.tagging, TaggingBehavior::Selective(_))
    }

    /// Whether the AS consistently forwards foreign communities.
    pub fn is_forward(&self) -> bool {
        self.forwarding == ForwardingBehavior::Forward
    }

    /// Whether the AS's forwarding is selective.
    pub fn is_selective_forward(&self) -> bool {
        matches!(self.forwarding, ForwardingBehavior::SelectiveForward(_))
    }
}

/// Ground-truth role assignment for a whole topology.
#[derive(Debug, Clone, Default)]
pub struct RoleAssignment {
    roles: HashMap<Asn, Role>,
}

impl RoleAssignment {
    /// Empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the role of one AS.
    pub fn set(&mut self, asn: Asn, role: Role) {
        self.roles.insert(asn, role);
    }

    /// Role of an AS. Panics on unknown ASNs — scenarios must assign every
    /// AS a role before propagation.
    pub fn role(&self, asn: Asn) -> Role {
        *self
            .roles
            .get(&asn)
            .unwrap_or_else(|| panic!("no role assigned for {asn}"))
    }

    /// Role, if assigned.
    pub fn get(&self, asn: Asn) -> Option<Role> {
        self.roles.get(&asn).copied()
    }

    /// Number of assigned ASes.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Whether no roles are assigned.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    /// Iterate (ASN, role) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Role)> + '_ {
        self.roles.iter().map(|(&a, &r)| (a, r))
    }

    /// Count ASes per short role name.
    pub fn counts(&self) -> HashMap<String, usize> {
        let mut out = HashMap::new();
        for (_, r) in self.iter() {
            *out.entry(r.short()).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names() {
        assert_eq!(Role::TF.short(), "tf");
        assert_eq!(Role::TC.short(), "tc");
        assert_eq!(Role::SF.short(), "sf");
        assert_eq!(Role::SC.short(), "sc");
        let sel = Role {
            tagging: TaggingBehavior::Selective(SelectivePolicy::NoProvider),
            forwarding: ForwardingBehavior::Forward,
        };
        assert_eq!(sel.short(), "Tf");
    }

    #[test]
    fn selective_policy_matrix() {
        use EdgeKind::*;
        let p = SelectivePolicy::NoProvider;
        assert!(!p.tags_toward(Some(Provider)));
        assert!(p.tags_toward(Some(Peer)));
        assert!(p.tags_toward(Some(Customer)));
        assert!(p.tags_toward(None)); // collector

        let pp = SelectivePolicy::NoProviderNoPeer;
        assert!(!pp.tags_toward(Some(Provider)));
        assert!(!pp.tags_toward(Some(Peer)));
        assert!(pp.tags_toward(Some(Customer)));
        assert!(pp.tags_toward(None));

        let co = SelectivePolicy::CollectorOnly;
        assert!(!co.tags_toward(Some(Customer)));
        assert!(co.tags_toward(None));
    }

    #[test]
    fn assignment_roundtrip() {
        let mut a = RoleAssignment::new();
        a.set(Asn(1), Role::TF);
        a.set(Asn(2), Role::SC);
        assert_eq!(a.role(Asn(1)), Role::TF);
        assert_eq!(a.get(Asn(3)), None);
        assert_eq!(a.len(), 2);
        let counts = a.counts();
        assert_eq!(counts["tf"], 1);
        assert_eq!(counts["sc"], 1);
    }

    #[test]
    #[should_panic(expected = "no role assigned")]
    fn missing_role_panics() {
        RoleAssignment::new().role(Asn(9));
    }
}
