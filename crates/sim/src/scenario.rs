//! Scenario generators (paper §6.1–§6.2).
//!
//! A scenario assigns ground-truth roles to every AS of a topology, runs
//! the propagation model over a path substrate, and returns the resulting
//! `(path, comm)` tuples together with the roles and the visibility
//! annotation — everything the verification experiments (Table 2, Fig. 2,
//! Tables 5/6) need.
//!
//! | Scenario       | Roles                                               |
//! |----------------|-----------------------------------------------------|
//! | `alltf`        | every AS tagger-forward (max visibility)            |
//! | `alltc`        | every AS tagger-cleaner (min visibility)            |
//! | `random`       | uniform over {tf, tc, sf, sc}                       |
//! | `random+noise` | `random` roles + the §6.1 noise model               |
//! | `random-p`     | `random`, ~50% of taggers selective (no providers)  |
//! | `random-pp`    | `random`, ~50% selective (no providers, no peers)   |

use crate::noise::NoiseModel;
use crate::propagate::Propagator;
use crate::role::{ForwardingBehavior, Role, RoleAssignment, SelectivePolicy, TaggingBehavior};
use crate::visibility::Visibility;
use bgp_topology::prelude::*;
use bgp_types::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which §6 scenario to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// All ASes tagger-forward.
    AllTf,
    /// All ASes tagger-cleaner.
    AllTc,
    /// Uniform random over the four consistent roles.
    Random,
    /// `Random` plus the noise model.
    RandomNoise,
    /// `Random` with ~50% of taggers selective: no tagging toward providers.
    RandomP,
    /// `Random` with ~50% of taggers selective: tagging toward customers
    /// and collectors only.
    RandomPp,
}

impl Scenario {
    /// All six scenarios in paper order.
    pub const ALL: [Scenario; 6] = [
        Scenario::AllTc,
        Scenario::AllTf,
        Scenario::Random,
        Scenario::RandomNoise,
        Scenario::RandomP,
        Scenario::RandomPp,
    ];

    /// The paper's name for the scenario.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::AllTf => "alltf",
            Scenario::AllTc => "alltc",
            Scenario::Random => "random",
            Scenario::RandomNoise => "random+noise",
            Scenario::RandomP => "random-p",
            Scenario::RandomPp => "random-pp",
        }
    }

    /// Assign ground-truth roles for this scenario.
    ///
    /// `random+noise` uses the same seed stream as `random` so the two are
    /// role-identical (the paper re-uses the same seed to isolate the
    /// noise effect).
    pub fn assign_roles(&self, g: &AsGraph, seed: u64) -> RoleAssignment {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ra = RoleAssignment::new();
        match self {
            Scenario::AllTf => {
                for asn in g.asns() {
                    ra.set(asn, Role::TF);
                }
            }
            Scenario::AllTc => {
                for asn in g.asns() {
                    ra.set(asn, Role::TC);
                }
            }
            Scenario::Random | Scenario::RandomNoise => {
                for asn in g.asns() {
                    ra.set(asn, random_role(&mut rng));
                }
            }
            Scenario::RandomP | Scenario::RandomPp => {
                let policy = if *self == Scenario::RandomP {
                    SelectivePolicy::NoProvider
                } else {
                    SelectivePolicy::NoProviderNoPeer
                };
                for asn in g.asns() {
                    let mut role = random_role(&mut rng);
                    // ~50% of taggers become selective.
                    if role.is_tagger() && rng.random_bool(0.5) {
                        role.tagging = TaggingBehavior::Selective(policy);
                    }
                    ra.set(asn, role);
                }
            }
        }
        ra
    }

    /// Materialize the scenario: assign roles, propagate communities over
    /// `paths`, compute visibility.
    pub fn materialize(&self, g: &AsGraph, paths: &[AsPath], seed: u64) -> GroundTruthDataset {
        let roles = self.assign_roles(g, seed);
        let noise = match self {
            Scenario::RandomNoise => Some(NoiseModel::paper_defaults(g.asns(), seed)),
            _ => None,
        };
        let tuples = {
            let mut prop = Propagator::new(g, &roles);
            if let Some(n) = &noise {
                prop = prop.with_noise(n);
            }
            prop.tuples(paths)
        };
        // Visibility is defined on the noise-free model: hidden-ness is a
        // topological property of roles, not of noise.
        let vis_prop = Propagator::new(g, &roles);
        let visibility = Visibility::compute(&vis_prop, paths);
        GroundTruthDataset {
            scenario: *self,
            roles,
            tuples,
            visibility,
        }
    }
}

fn random_role(rng: &mut StdRng) -> Role {
    let tagging = if rng.random_bool(0.5) {
        TaggingBehavior::Tagger
    } else {
        TaggingBehavior::Silent
    };
    let forwarding = if rng.random_bool(0.5) {
        ForwardingBehavior::Forward
    } else {
        ForwardingBehavior::Cleaner
    };
    Role {
        tagging,
        forwarding,
    }
}

/// A fully materialized ground-truth dataset: the input to verification.
#[derive(Debug, Clone)]
pub struct GroundTruthDataset {
    /// Which scenario produced it.
    pub scenario: Scenario,
    /// Ground-truth roles.
    pub roles: RoleAssignment,
    /// The `(path, comm)` tuples as a collector would record them.
    pub tuples: Vec<PathCommTuple>,
    /// Ground-truth observability annotation.
    pub visibility: Visibility,
}

impl GroundTruthDataset {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> (AsGraph, Vec<AsPath>) {
        let mut cfg = TopologyConfig::small();
        cfg.transit = 40;
        cfg.edge = 160;
        cfg.collector_peers = 12;
        let g = cfg.seed(5).build();
        let origins: Vec<NodeId> = g.node_ids().collect();
        let substrate = PathSubstrate::generate_for_origins(&g, &origins, 4);
        (g, substrate.paths)
    }

    #[test]
    fn alltf_everything_tagged() {
        let (g, paths) = small_world();
        let ds = Scenario::AllTf.materialize(&g, &paths, 1);
        for t in &ds.tuples {
            // Every AS on the path contributed its community.
            for &a in t.path.asns() {
                assert!(t.comm.contains_upper(a));
            }
        }
    }

    #[test]
    fn alltc_only_peer_tag_survives() {
        let (g, paths) = small_world();
        let ds = Scenario::AllTc.materialize(&g, &paths, 1);
        for t in &ds.tuples {
            assert_eq!(t.comm.len(), 1, "cleaner peers keep only their own tag");
            assert!(t.comm.contains_upper(t.path.peer()));
        }
    }

    #[test]
    fn random_role_distribution_uniform() {
        let (g, _) = small_world();
        let ra = Scenario::Random.assign_roles(&g, 3);
        let counts = ra.counts();
        let n = g.node_count() as f64;
        for k in ["tf", "tc", "sf", "sc"] {
            let share = counts[k] as f64 / n;
            assert!((0.17..0.33).contains(&share), "{k} share {share}");
        }
    }

    #[test]
    fn random_and_noise_share_roles() {
        let (g, _) = small_world();
        let a = Scenario::Random.assign_roles(&g, 9);
        let b = Scenario::RandomNoise.assign_roles(&g, 9);
        for asn in g.asns() {
            assert_eq!(a.role(asn), b.role(asn));
        }
    }

    #[test]
    fn selective_share_of_taggers() {
        let (g, _) = small_world();
        let ra = Scenario::RandomP.assign_roles(&g, 4);
        let (mut sel, mut tag) = (0, 0);
        for (_, r) in ra.iter() {
            if r.is_selective() {
                sel += 1;
            } else if r.is_tagger() {
                tag += 1;
            }
        }
        let share = sel as f64 / (sel + tag) as f64;
        assert!((0.4..0.6).contains(&share), "selective share {share}");
    }

    #[test]
    fn noise_changes_outputs_but_not_roles() {
        let (g, paths) = small_world();
        let clean = Scenario::Random.materialize(&g, &paths, 11);
        let noisy = Scenario::RandomNoise.materialize(&g, &paths, 11);
        assert_eq!(clean.len(), noisy.len());
        let differing = clean
            .tuples
            .iter()
            .zip(&noisy.tuples)
            .filter(|(a, b)| a.comm != b.comm)
            .count();
        assert!(differing > 0, "noise must perturb some outputs");
        // Expected perturbation band: path-occurrence noise at 5% +
        // tuple noise at 5% -> roughly 5-25% of tuples affected.
        let share = differing as f64 / clean.len() as f64;
        assert!(share < 0.5, "noise share {share} too large");
    }

    #[test]
    fn materialize_deterministic() {
        let (g, paths) = small_world();
        let a = Scenario::RandomPp.materialize(&g, &paths, 21);
        let b = Scenario::RandomPp.materialize(&g, &paths, 21);
        assert_eq!(a.tuples, b.tuples);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "alltc",
                "alltf",
                "random",
                "random+noise",
                "random-p",
                "random-pp"
            ]
        );
    }
}
