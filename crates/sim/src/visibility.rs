//! Ground-truth visibility annotation (paper §5.1.2–§5.1.3, §6.4).
//!
//! Even with perfect knowledge of every AS's role, some behavior is
//! fundamentally unobservable at collectors:
//!
//! * an AS's **tagging** behavior is *hidden* when on every path through it
//!   some upstream AS is a cleaner;
//! * an AS's **forwarding** behavior is *hidden* when no path offers both a
//!   clean upstream and a visible downstream tagger;
//! * **leaf** ASes (only ever path origins) have no forwarding behavior to
//!   observe at all.
//!
//! The confusion matrices of Tables 5/6 report these rows separately; this
//! module computes them from the ground-truth roles, independent of the
//! inference.

use crate::propagate::Propagator;
use bgp_types::prelude::*;
use std::collections::{HashMap, HashSet};

/// Per-AS ground-truth observability.
#[derive(Debug, Clone, Default)]
pub struct Visibility {
    /// ASes whose tagging behavior is visible on at least one tuple.
    pub tagging_visible: HashSet<Asn>,
    /// ASes whose forwarding behavior is visible on at least one tuple.
    pub forwarding_visible: HashSet<Asn>,
    /// ASes that never appear at a non-terminal path position.
    pub leaves: HashSet<Asn>,
    /// Every AS seen on any path.
    pub all: HashSet<Asn>,
}

impl Visibility {
    /// Compute visibility for a set of paths under ground-truth roles.
    ///
    /// `prop` supplies both the forwarding roles (via its role assignment)
    /// and the relationship-aware "does this AS tag on this edge" test
    /// needed for selective taggers.
    pub fn compute(prop: &Propagator<'_>, paths: &[AsPath]) -> Self {
        let mut v = Visibility::default();
        let mut non_terminal: HashSet<Asn> = HashSet::new();

        for p in paths {
            let asns = p.asns();
            let n = asns.len();
            v.all.extend(asns.iter().copied());
            for &a in &asns[..n - 1] {
                non_terminal.insert(a);
            }

            // Walk upstream prefix: clean[x] = all A_i (i < x) forward.
            let mut upstream_clean = true;
            for x in 1..=n {
                let ax = asns[x - 1];
                if upstream_clean {
                    v.tagging_visible.insert(ax);
                    // Forwarding visible: need a downstream tagger A_t whose
                    // tag actually traverses A_x, with forwarders between.
                    if x < n && Self::downstream_tagger_visible(prop, asns, x) {
                        v.forwarding_visible.insert(ax);
                    }
                }
                // Does A_x keep the chain clean for positions x+1..?
                if !prop.roles().role(ax).is_forward() {
                    upstream_clean = false;
                }
                if !upstream_clean && x >= 1 {
                    // Nothing further downstream can be visible on this path.
                    break;
                }
            }
        }

        v.leaves = v.all.difference(&non_terminal).copied().collect();
        v
    }

    /// Is there a `t > x` with `A_t` tagging toward `A_{t-1}` and every AS
    /// strictly between `x` and `t` forwarding?
    fn downstream_tagger_visible(prop: &Propagator<'_>, asns: &[Asn], x: usize) -> bool {
        let n = asns.len();
        for t in (x + 1)..=n {
            let at = asns[t - 1];
            // All A_j with x < j < t must forward.
            // (Checked incrementally: if A_{t-1} for t-1 > x is a cleaner,
            // no later t can work either.)
            if prop.tags_on_edge(at, Some(asns[t - 2])) {
                return true;
            }
            if !prop.roles().role(at).is_forward() {
                return false; // tags from beyond A_t are cleaned here
            }
        }
        false
    }

    /// Tagging hidden: seen somewhere, never with a clean upstream.
    pub fn tagging_hidden(&self, asn: Asn) -> bool {
        self.all.contains(&asn) && !self.tagging_visible.contains(&asn)
    }

    /// Forwarding hidden: a transit AS whose forwarding is never
    /// observable.
    pub fn forwarding_hidden(&self, asn: Asn) -> bool {
        self.all.contains(&asn)
            && !self.leaves.contains(&asn)
            && !self.forwarding_visible.contains(&asn)
    }

    /// Whether the AS is a leaf in the substrate.
    pub fn is_leaf(&self, asn: Asn) -> bool {
        self.leaves.contains(&asn)
    }

    /// Summary counts: (all, tagging visible, forwarding visible, leaves).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        (
            self.all.len(),
            self.tagging_visible.len(),
            self.forwarding_visible.len(),
            self.leaves.len(),
        )
    }

    /// Group visibility per AS into a map for fast joins in eval code.
    pub fn tagging_visibility_map(&self) -> HashMap<Asn, bool> {
        self.all
            .iter()
            .map(|&a| (a, self.tagging_visible.contains(&a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::{Role, RoleAssignment};
    use bgp_topology::prelude::{AsGraph, Relationship, Tier};

    fn setup(roles: [(u32, Role); 4]) -> (AsGraph, RoleAssignment) {
        let mut g = AsGraph::new();
        let ids: Vec<_> = roles
            .iter()
            .enumerate()
            .map(|(i, &(asn, _))| {
                g.add_node(
                    Asn(asn),
                    if i == roles.len() - 1 {
                        Tier::Edge
                    } else {
                        Tier::Transit
                    },
                )
            })
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[1], w[0], Relationship::CustomerToProvider);
        }
        let mut ra = RoleAssignment::new();
        for &(asn, role) in &roles {
            ra.set(Asn(asn), role);
        }
        (g, ra)
    }

    #[test]
    fn cleaner_hides_everything_downstream() {
        // A1 tf, A2 tc (cleaner), A3 tf, A4 tf.
        let (g, ra) = setup([(1, Role::TF), (2, Role::TC), (3, Role::TF), (4, Role::TF)]);
        let prop = Propagator::new(&g, &ra);
        let paths = vec![path(&[1, 2, 3, 4])];
        let v = Visibility::compute(&prop, &paths);
        assert!(v.tagging_visible.contains(&Asn(1)));
        assert!(v.tagging_visible.contains(&Asn(2)));
        assert!(
            !v.tagging_visible.contains(&Asn(3)),
            "hidden behind cleaner A2"
        );
        assert!(v.tagging_hidden(Asn(3)));
        assert!(v.tagging_hidden(Asn(4)));
    }

    #[test]
    fn forwarding_needs_downstream_tagger() {
        // A1 sf, A2 sf, A3 silent origin: nobody downstream of A1/A2 tags,
        // so no forwarding visibility anywhere.
        let (g, ra) = setup([(1, Role::SF), (2, Role::SF), (3, Role::SF), (4, Role::SC)]);
        let prop = Propagator::new(&g, &ra);
        let paths = vec![path(&[1, 2, 3, 4])];
        let v = Visibility::compute(&prop, &paths);
        assert!(v.forwarding_visible.is_empty());
        assert!(v.forwarding_hidden(Asn(1)));
        // Leaf A4 is not "hidden": it has nothing to observe.
        assert!(!v.forwarding_hidden(Asn(4)));
        assert!(v.is_leaf(Asn(4)));
    }

    #[test]
    fn forwarding_visible_with_tagger_origin() {
        let (g, ra) = setup([(1, Role::SF), (2, Role::SF), (3, Role::SF), (4, Role::TF)]);
        let prop = Propagator::new(&g, &ra);
        let paths = vec![path(&[1, 2, 3, 4])];
        let v = Visibility::compute(&prop, &paths);
        for a in [1u32, 2, 3] {
            assert!(
                v.forwarding_visible.contains(&Asn(a)),
                "AS{a} forwarding visible"
            );
        }
        assert!(!v.forwarding_visible.contains(&Asn(4)), "origin is a leaf");
    }

    #[test]
    fn intermediate_cleaner_blocks_tagger_light() {
        // A4 tags, but A3 cleans: A2's forwarding cannot be judged from
        // A4's tag; A3 itself tags though, so A2 IS illuminated by A3.
        let (g, ra) = setup([(1, Role::SF), (2, Role::SF), (3, Role::TC), (4, Role::TF)]);
        let prop = Propagator::new(&g, &ra);
        let paths = vec![path(&[1, 2, 3, 4])];
        let v = Visibility::compute(&prop, &paths);
        assert!(
            v.forwarding_visible.contains(&Asn(2)),
            "A3's own tag illuminates A2"
        );
        // A3's forwarding: downstream tagger A4 exists and is adjacent.
        assert!(v.forwarding_visible.contains(&Asn(3)));
    }

    #[test]
    fn silent_cleaner_between_blocks() {
        // A3 silent-cleaner, A4 tagger: A4's tag is eaten by A3 and A3 adds
        // nothing, so A2 gets no downstream light.
        let (g, ra) = setup([(1, Role::SF), (2, Role::SF), (3, Role::SC), (4, Role::TF)]);
        let prop = Propagator::new(&g, &ra);
        let paths = vec![path(&[1, 2, 3, 4])];
        let v = Visibility::compute(&prop, &paths);
        assert!(!v.forwarding_visible.contains(&Asn(2)));
        assert!(v.forwarding_visible.contains(&Asn(3)), "A4 illuminates A3");
    }

    #[test]
    fn multiple_paths_union_visibility() {
        // Path 1 hides A3 behind a cleaner; path 2 shows it cleanly.
        let mut g = AsGraph::new();
        let a1 = g.add_node(Asn(1), Tier::Transit);
        let a2 = g.add_node(Asn(2), Tier::Transit);
        let a3 = g.add_node(Asn(3), Tier::Edge);
        let b1 = g.add_node(Asn(5), Tier::Transit);
        g.add_edge(a2, a1, Relationship::CustomerToProvider);
        g.add_edge(a3, a2, Relationship::CustomerToProvider);
        g.add_edge(a3, b1, Relationship::CustomerToProvider);
        let mut ra = RoleAssignment::new();
        ra.set(Asn(1), Role::TF);
        ra.set(Asn(2), Role::TC); // cleaner on path 1
        ra.set(Asn(3), Role::TF);
        ra.set(Asn(5), Role::SF); // clean path 2
        let prop = Propagator::new(&g, &ra);
        let paths = vec![path(&[1, 2, 3]), path(&[5, 3])];
        let v = Visibility::compute(&prop, &paths);
        assert!(
            v.tagging_visible.contains(&Asn(3)),
            "visible via second path"
        );
        assert!(!v.tagging_hidden(Asn(3)));
    }

    #[test]
    fn counts_shape() {
        let (g, ra) = setup([(1, Role::TF), (2, Role::TF), (3, Role::TF), (4, Role::TF)]);
        let prop = Propagator::new(&g, &ra);
        let v = Visibility::compute(&prop, &[path(&[1, 2, 3, 4])]);
        let (all, tv, fv, leaves) = v.counts();
        assert_eq!(all, 4);
        assert_eq!(tv, 4);
        assert_eq!(fv, 3);
        assert_eq!(leaves, 1);
    }
}
