//! Epoch layer: when to seal, and what a sealed epoch publishes.
//!
//! The coordinator cuts the stream into *epochs* — by ingested event
//! count, by stream-time span, or whichever trips first — and publishes an
//! [`EpochSnapshot`] per epoch: a monotonically versioned classification
//! of every counted AS plus the [`ClassFlip`]s since the previous
//! snapshot. Downstream consumers (alerting on a neighbor that stopped
//! forwarding, dashboards, the `bgp-stream-infer` binary) watch the flip
//! stream instead of diffing full databases.
//!
//! A snapshot's primary state is **dense**: a [`DenseOutcome`] holding the
//! `Arc`'d counter column over the shared interner's id space plus the
//! Asn-sorted id permutation. Classes and flips are `Arc`'d too, so an
//! epoch that sealed without new evidence shares every component of its
//! predecessor at pointer-copy cost, and the serving layer slices record
//! tables straight from the columns. The sparse map-backed
//! [`InferenceOutcome`] the batch engine returns is materialized lazily
//! (once, on first use) for exports and historical queries.

use bgp_infer::classify::Class;
use bgp_infer::compiled::DenseOutcome;
use bgp_infer::engine::InferenceOutcome;
use bgp_types::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// When the pipeline seals the running epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochPolicy {
    /// Seal after this many ingested events (dedup hits included — they
    /// are stream progress even when they add no tuple). `None` disables.
    pub max_events: Option<u64>,
    /// Seal when an event's timestamp is at least this many seconds past
    /// the epoch's first event. `None` disables.
    pub max_span_secs: Option<u64>,
}

impl EpochPolicy {
    /// Seal every `n` events.
    pub fn every_events(n: u64) -> Self {
        EpochPolicy {
            max_events: Some(n.max(1)),
            max_span_secs: None,
        }
    }

    /// Seal every `secs` of stream time.
    pub fn every_span(secs: u64) -> Self {
        EpochPolicy {
            max_events: None,
            max_span_secs: Some(secs.max(1)),
        }
    }

    /// Seal on whichever of the two triggers first.
    pub fn either(events: u64, secs: u64) -> Self {
        EpochPolicy {
            max_events: Some(events.max(1)),
            max_span_secs: Some(secs.max(1)),
        }
    }

    /// Never seal automatically (single epoch at `finish`).
    pub fn manual() -> Self {
        EpochPolicy {
            max_events: None,
            max_span_secs: None,
        }
    }

    /// Whether the running epoch should seal given its event count and
    /// the span between its first and latest event timestamps.
    pub fn should_seal(&self, events_in_epoch: u64, span_secs: u64) -> bool {
        self.max_events.is_some_and(|m| events_in_epoch >= m)
            || self.max_span_secs.is_some_and(|m| span_secs >= m)
    }
}

impl Default for EpochPolicy {
    fn default() -> Self {
        EpochPolicy::every_events(8_192)
    }
}

/// One AS whose classification changed between consecutive snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassFlip {
    /// The AS.
    pub asn: Asn,
    /// Class in the previous snapshot ([`Class::NONE`] when newly seen).
    pub from: Class,
    /// Class in this snapshot.
    pub to: Class,
}

impl std::fmt::Display for ClassFlip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}->{}", self.asn, self.from, self.to)
    }
}

/// The published state of one sealed epoch.
#[derive(Debug)]
pub struct EpochSnapshot {
    /// 0-based epoch sequence number.
    pub epoch: u64,
    /// Monotonically increasing classification version (`epoch + 1`;
    /// version 0 is "nothing classified yet").
    pub version: u64,
    /// Timestamp of the last event ingested before sealing.
    pub sealed_at: u64,
    /// Events ingested during this epoch (including dedup hits).
    pub events: u64,
    /// Events ingested since the stream began.
    pub total_events: u64,
    /// Unique tuples stored across all shards at seal time.
    pub unique_tuples: usize,
    /// The dense inference state — counter column over the shared id
    /// space, Asn-sorted permutation, thresholds. `None` once the
    /// snapshot has been compacted (see `StreamConfig::compact_history`):
    /// a long-lived stream keeps every epoch's classes and flips, but
    /// only the latest epoch's counters.
    pub dense: Option<DenseOutcome>,
    /// Lazily materialized sparse view of `dense` (the batch engine's
    /// shape, kept for exports and historical-epoch tooling).
    outcome_cell: OnceLock<InferenceOutcome>,
    /// Classification of every counted AS, sorted by ASN. Shared with the
    /// previous snapshot when nothing changed.
    pub classes: Arc<Vec<(Asn, Class)>>,
    /// ASes whose class changed since the previous snapshot, sorted by
    /// ASN. `Arc`'d so the serving layer's flip log can retain epochs as
    /// zero-copy chunks.
    pub flips: Arc<Vec<ClassFlip>>,
    /// Wall-clock nanoseconds the seal took (recount + snapshot build).
    pub seal_nanos: u64,
    /// Wall-clock nanoseconds of the counting (recount) portion alone;
    /// 0 when the seal reused the previous epoch wholesale.
    pub count_nanos: u64,
}

impl Clone for EpochSnapshot {
    fn clone(&self) -> Self {
        let outcome_cell = OnceLock::new();
        if let Some(v) = self.outcome_cell.get() {
            let _ = outcome_cell.set(v.clone());
        }
        EpochSnapshot {
            epoch: self.epoch,
            version: self.version,
            sealed_at: self.sealed_at,
            events: self.events,
            total_events: self.total_events,
            unique_tuples: self.unique_tuples,
            dense: self.dense.clone(),
            outcome_cell,
            classes: Arc::clone(&self.classes),
            flips: Arc::clone(&self.flips),
            seal_nanos: self.seal_nanos,
            count_nanos: self.count_nanos,
        }
    }
}

impl EpochSnapshot {
    /// Assemble a snapshot (pipeline-internal; the lazy sparse cell
    /// starts empty).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        epoch: u64,
        sealed_at: u64,
        events: u64,
        total_events: u64,
        unique_tuples: usize,
        dense: DenseOutcome,
        classes: Arc<Vec<(Asn, Class)>>,
        flips: Arc<Vec<ClassFlip>>,
    ) -> Self {
        EpochSnapshot {
            epoch,
            version: epoch + 1,
            sealed_at,
            events,
            total_events,
            unique_tuples,
            dense: Some(dense),
            outcome_cell: OnceLock::new(),
            classes,
            flips,
            seal_nanos: 0,
            count_nanos: 0,
        }
    }

    /// Rebuild a snapshot from durable state — the archive restore path.
    /// Unlike [`assemble`](EpochSnapshot::assemble) this is `pub` (the
    /// archive lives downstream of this crate), takes the persisted
    /// timing fields verbatim, and accepts `dense: None` for epochs
    /// whose counter column was compacted away on disk.
    #[allow(clippy::too_many_arguments)]
    pub fn restored(
        epoch: u64,
        sealed_at: u64,
        events: u64,
        total_events: u64,
        unique_tuples: usize,
        dense: Option<DenseOutcome>,
        classes: Arc<Vec<(Asn, Class)>>,
        flips: Arc<Vec<ClassFlip>>,
        seal_nanos: u64,
        count_nanos: u64,
    ) -> Self {
        EpochSnapshot {
            epoch,
            version: epoch + 1,
            sealed_at,
            events,
            total_events,
            unique_tuples,
            dense,
            outcome_cell: OnceLock::new(),
            classes,
            flips,
            seal_nanos,
            count_nanos,
        }
    }

    /// The sparse map-backed [`InferenceOutcome`] of this epoch —
    /// materialized from the dense state on first use, then cached.
    /// `None` once the snapshot has been compacted.
    pub fn outcome(&self) -> Option<&InferenceOutcome> {
        let dense = self.dense.as_ref()?;
        Some(self.outcome_cell.get_or_init(|| dense.to_outcome()))
    }

    /// Drop the counter state (history compaction), keeping classes and
    /// flips.
    pub(crate) fn compact(&mut self) {
        self.dense = None;
        self.outcome_cell = OnceLock::new();
    }

    /// Classification of one AS in this snapshot ([`Class::NONE`] for an
    /// AS the epoch never counted). Served from the sorted class table,
    /// so it works on compacted snapshots too.
    pub fn class_of(&self, asn: Asn) -> Class {
        match self.classes.binary_search_by_key(&asn, |&(a, _)| a) {
            Ok(i) => self.classes[i].1,
            Err(_) => Class::NONE,
        }
    }
}

/// Diff two classification maps into a sorted flip list. `prev` may be
/// empty (first epoch): every decided AS then flips from [`Class::NONE`].
/// (The pipeline itself diffs densely by interned id; this is the
/// reference shape, kept for tools and tests.)
pub fn diff_classes(prev: &HashMap<Asn, Class>, now: &[(Asn, Class)]) -> Vec<ClassFlip> {
    let mut flips = Vec::new();
    for &(asn, to) in now {
        let from = prev.get(&asn).copied().unwrap_or(Class::NONE);
        if from != to {
            flips.push(ClassFlip { asn, from, to });
        }
    }
    // ASes that vanish from the counted set cannot happen (counters only
    // grow), so no reverse sweep is needed.
    flips.sort_by_key(|f| f.asn);
    flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_infer::classify::{ForwardingClass, TaggingClass};

    const TF: Class = Class {
        tagging: TaggingClass::Tagger,
        forwarding: ForwardingClass::Forward,
    };
    const TN: Class = Class {
        tagging: TaggingClass::Tagger,
        forwarding: ForwardingClass::None,
    };

    #[test]
    fn policy_event_trigger() {
        let p = EpochPolicy::every_events(3);
        assert!(!p.should_seal(2, 1_000_000));
        assert!(p.should_seal(3, 0));
    }

    #[test]
    fn policy_span_trigger() {
        let p = EpochPolicy::every_span(300);
        assert!(!p.should_seal(1_000_000, 299));
        assert!(p.should_seal(0, 300));
    }

    #[test]
    fn policy_either_and_manual() {
        let p = EpochPolicy::either(10, 60);
        assert!(p.should_seal(10, 0));
        assert!(p.should_seal(0, 60));
        assert!(!p.should_seal(9, 59));
        assert!(!EpochPolicy::manual().should_seal(u64::MAX, u64::MAX));
    }

    #[test]
    fn diff_reports_new_and_changed() {
        let mut prev = HashMap::new();
        prev.insert(Asn(1), TN);
        prev.insert(Asn(2), TF);
        let now = vec![(Asn(1), TF), (Asn(2), TF), (Asn(3), TN)];
        let flips = diff_classes(&prev, &now);
        assert_eq!(flips.len(), 2);
        assert_eq!(flips[0].asn, Asn(1));
        assert_eq!(flips[0].from, TN);
        assert_eq!(flips[0].to, TF);
        assert_eq!(flips[1].asn, Asn(3));
        assert_eq!(flips[1].from, Class::NONE);
    }
}
