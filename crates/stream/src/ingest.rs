//! Ingest layer: chunked sources of timestamped tuples.
//!
//! A [`TupleSource`] hands the pipeline bounded batches of
//! [`StreamEvent`]s instead of one giant tuple vector, so decode and
//! sanitation memory stay bounded by one record, not one archive. (The
//! MRT-backed sources still borrow the archive *bytes* as a slice — per
//! [`bgp_mrt::MrtReader`]'s design — so whole-file bytes are the
//! caller's to provide, e.g. via `fs::read` or an mmap; what never
//! materializes is the tuple vector.) Three sources cover the
//! workspace's data planes:
//!
//! * [`MrtSource`] — pulls records incrementally out of a
//!   [`bgp_mrt::TupleStream`], the §4.1 path-shape cleaning used by the
//!   batch [`bgp_mrt::extract_tuples`] itself (an optional
//!   [`Sanitizer`](bgp_infer::sanitize::Sanitizer) adds the registry
//!   filters on top);
//! * [`DaySource`] — walks a generated [`DayArchive`]'s chunks (RIB
//!   snapshot, then each per-bin update file) the way a poller walks a
//!   collector's published files;
//! * [`IterSource`] — adapts any in-memory event iterator (e.g. the
//!   [`bgp_sim::feed::UpdateFeed`] scenario stream).

use bgp_collector::archive::DayArchive;
use bgp_infer::prelude::{SanitationStats, Sanitizer};
use bgp_mrt::{MrtReader, MrtRecord, TupleStream};
use bgp_types::prelude::*;

/// One timestamped `(path, comm)` observation entering the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEvent {
    /// Capture time, seconds since epoch (drives time-based epochs).
    pub timestamp: u64,
    /// The sanitized observation.
    pub tuple: PathCommTuple,
}

impl StreamEvent {
    /// Construct an event.
    pub fn new(timestamp: u64, tuple: PathCommTuple) -> Self {
        StreamEvent { timestamp, tuple }
    }
}

/// Errors a source can surface mid-stream.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying MRT bytes failed to decode.
    Mrt(bgp_mrt::MrtError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Mrt(e) => write!(f, "mrt decode: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<bgp_mrt::MrtError> for IngestError {
    fn from(e: bgp_mrt::MrtError) -> Self {
        IngestError::Mrt(e)
    }
}

/// A pull-based source of event batches.
pub trait TupleSource {
    /// Produce up to `max` events. An empty batch means the source is
    /// exhausted; errors are sticky (callers should stop on the first).
    fn next_batch(&mut self, max: usize) -> Result<Vec<StreamEvent>, IngestError>;
}

/// Streams one MRT archive's records through the §4.1 sanitation pipeline
/// without ever materializing the full tuple vector.
///
/// The default ([`MrtSource::new`]) wraps [`bgp_mrt::TupleStream`] — the
/// exact record-at-a-time extraction behind the batch
/// [`bgp_mrt::extract_tuples`] — so it applies path-shape cleaning only
/// and emits **one event per update message** (a multi-prefix
/// announcement carries one `(path, comm)`). Sharing that implementation
/// is what makes the stream/batch parity guarantee hold on arbitrary
/// archives, including ones mentioning reserved ASNs.
/// [`MrtSource::with_sanitizer`] layers the registry filters on top for
/// deployments that want them; that mode deliberately diverges from the
/// registry-less batch reference.
pub struct MrtSource<'a> {
    mode: Mode<'a>,
    done: bool,
}

enum Mode<'a> {
    /// Batch-parity reference: the same extraction the batch path runs.
    Shape(TupleStream<'a>),
    /// Registry overlay: raw records, filtered through
    /// [`Sanitizer::process`] (which owns the drop rules and stats).
    Registry {
        reader: MrtReader<'a>,
        sanitizer: Sanitizer,
        stats: SanitationStats,
        /// Entries decoded from the current record but not yet emitted
        /// (one TABLE_DUMP_V2 record carries a whole prefix group).
        pending: Vec<StreamEvent>,
        raw_entries: u64,
    },
}

impl<'a> MrtSource<'a> {
    /// Stream `bytes` with path-shape cleaning only — the batch
    /// [`bgp_mrt::extract_tuples`] semantics, record for record.
    pub fn new(bytes: &'a [u8]) -> Self {
        MrtSource {
            mode: Mode::Shape(TupleStream::new(bytes)),
            done: false,
        }
    }

    /// Stream `bytes` through a caller-provided registry-driven sanitizer
    /// (drops tuples mentioning unallocated ASNs or bogon prefixes, on
    /// top of the shape cleaning).
    pub fn with_sanitizer(bytes: &'a [u8], sanitizer: Sanitizer) -> Self {
        MrtSource {
            mode: Mode::Registry {
                reader: MrtReader::new(bytes),
                sanitizer,
                stats: SanitationStats::default(),
                pending: Vec::new(),
                raw_entries: 0,
            },
            done: false,
        }
    }

    /// Sanitation counters accumulated so far.
    pub fn stats(&self) -> SanitationStats {
        match &self.mode {
            Mode::Shape(s) => SanitationStats {
                offered: s.kept() + s.shape_dropped(),
                dropped_path: s.shape_dropped(),
                kept: s.kept(),
                ..SanitationStats::default()
            },
            Mode::Registry { stats, .. } => *stats,
        }
    }

    /// Raw MRT entries seen so far (Table 1's "entries" accounting).
    pub fn raw_entries(&self) -> u64 {
        match &self.mode {
            Mode::Shape(s) => s.raw_entries(),
            Mode::Registry { raw_entries, .. } => *raw_entries,
        }
    }
}

/// Registry-filter one entry into at most one event. `prefix_ok` reports
/// whether any announced prefix passed the registry — the batch pipeline
/// keeps an update's tuple as long as any of its prefixes does (the
/// tuple is identical across them); the rest of the rules and the stats
/// bookkeeping live in [`Sanitizer::process`].
#[allow(clippy::too_many_arguments)]
fn registry_sanitize_into(
    sanitizer: &Sanitizer,
    stats: &mut SanitationStats,
    peer: Asn,
    raw_path: &RawAsPath,
    prefix_ok: bool,
    comm: &CommunitySet,
    ts: u64,
    out: &mut Vec<StreamEvent>,
) {
    if !prefix_ok {
        stats.offered += 1;
        stats.dropped_prefix += 1;
        return;
    }
    if let Some(t) = sanitizer.process(peer, raw_path, None, comm, stats) {
        out.push(StreamEvent::new(ts, t));
    }
}

impl TupleSource for MrtSource<'_> {
    fn next_batch(&mut self, max: usize) -> Result<Vec<StreamEvent>, IngestError> {
        let mut out = Vec::new();
        if self.done {
            return Ok(out);
        }
        match &mut self.mode {
            Mode::Shape(stream) => {
                while out.len() < max {
                    match stream.next() {
                        None => {
                            self.done = true;
                            break;
                        }
                        Some(Err(e)) => {
                            self.done = true;
                            return Err(e.into());
                        }
                        Some(Ok((ts, tuple))) => out.push(StreamEvent::new(ts, tuple)),
                    }
                }
            }
            Mode::Registry {
                reader,
                sanitizer,
                stats,
                pending,
                raw_entries,
            } => {
                while out.len() < max {
                    if let Some(ev) = pending.pop() {
                        out.push(ev);
                        continue;
                    }
                    match reader.next() {
                        None => {
                            self.done = true;
                            break;
                        }
                        Some(Err(e)) => {
                            self.done = true;
                            return Err(e.into());
                        }
                        Some(Ok(MrtRecord::PeerIndex(_))) => {}
                        Some(Ok(MrtRecord::Update(u))) => {
                            *raw_entries += 1;
                            if u.announced.is_empty() {
                                continue; // withdrawals carry no usable (path, comm)
                            }
                            let prefix_ok = u
                                .announced
                                .iter()
                                .any(|p| sanitizer.prefix_registry().is_allocated(p));
                            registry_sanitize_into(
                                sanitizer,
                                stats,
                                u.peer_asn,
                                &u.attributes.as_path,
                                prefix_ok,
                                &u.attributes.communities,
                                u.timestamp,
                                pending,
                            );
                            pending.reverse(); // popped back-to-front above
                        }
                        Some(Ok(MrtRecord::RibEntries(entries))) => {
                            for e in &entries {
                                *raw_entries += 1;
                                let prefix_ok = sanitizer.prefix_registry().is_allocated(&e.prefix);
                                registry_sanitize_into(
                                    sanitizer,
                                    stats,
                                    e.peer_asn,
                                    &e.attributes.as_path,
                                    prefix_ok,
                                    &e.attributes.communities,
                                    e.originated,
                                    pending,
                                );
                            }
                            pending.reverse();
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Streams a generated collector day — RIB snapshot, then each update bin
/// in publication order — as one continuous source.
pub struct DaySource<'a> {
    chunks: Vec<&'a [u8]>,
    current: Option<MrtSource<'a>>,
    next_chunk: usize,
    stats: SanitationStats,
    raw_entries: u64,
    failed: bool,
}

impl<'a> DaySource<'a> {
    /// Walk `archive`'s chunks (see [`DayArchive::chunks`]).
    pub fn new(archive: &'a DayArchive) -> Self {
        DaySource {
            chunks: archive.chunks().collect(),
            current: None,
            next_chunk: 0,
            stats: SanitationStats::default(),
            raw_entries: 0,
            failed: false,
        }
    }

    /// Sanitation counters accumulated across finished chunks.
    pub fn stats(&self) -> SanitationStats {
        self.stats
    }

    /// Raw MRT entries seen across finished chunks.
    pub fn raw_entries(&self) -> u64 {
        self.raw_entries
    }
}

impl TupleSource for DaySource<'_> {
    fn next_batch(&mut self, max: usize) -> Result<Vec<StreamEvent>, IngestError> {
        // Sticky failure: a decode error poisons the whole day — skipping
        // to the next chunk would silently drop the failed chunk's tail.
        if self.failed {
            return Ok(Vec::new());
        }
        loop {
            if let Some(src) = self.current.as_mut() {
                let batch = match src.next_batch(max) {
                    Ok(b) => b,
                    Err(e) => {
                        self.failed = true;
                        return Err(e);
                    }
                };
                if !batch.is_empty() {
                    return Ok(batch);
                }
                self.stats = add_stats(self.stats, src.stats());
                self.raw_entries += src.raw_entries();
                self.current = None;
            }
            match self.chunks.get(self.next_chunk) {
                None => return Ok(Vec::new()),
                Some(bytes) => {
                    self.current = Some(MrtSource::new(bytes));
                    self.next_chunk += 1;
                }
            }
        }
    }
}

fn add_stats(a: SanitationStats, b: SanitationStats) -> SanitationStats {
    SanitationStats {
        offered: a.offered + b.offered,
        dropped_asn: a.dropped_asn + b.dropped_asn,
        dropped_prefix: a.dropped_prefix + b.dropped_prefix,
        dropped_path: a.dropped_path + b.dropped_path,
        kept: a.kept + b.kept,
    }
}

/// Adapts any event iterator (a simulated feed, a replayed trace) into a
/// [`TupleSource`].
pub struct IterSource<I> {
    inner: I,
}

impl<I: Iterator<Item = StreamEvent>> IterSource<I> {
    /// Wrap an iterator.
    pub fn new(inner: I) -> Self {
        IterSource { inner }
    }
}

impl<I: Iterator<Item = StreamEvent>> TupleSource for IterSource<I> {
    fn next_batch(&mut self, max: usize) -> Result<Vec<StreamEvent>, IngestError> {
        Ok(self.inner.by_ref().take(max).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_mrt::MrtWriter;

    fn update(peer: u32, path: &[u32], tag: Option<u32>, ts: u64) -> UpdateMessage {
        UpdateMessage::announcement(
            Asn(peer),
            ts,
            Prefix::v4([203, 0, 114, 0], 24),
            RawAsPath::from_sequence(path.iter().map(|&v| Asn(v)).collect()),
            CommunitySet::from_iter(tag.map(|a| AnyCommunity::tag_for(Asn(a), 100))),
        )
    }

    #[test]
    fn mrt_source_streams_in_batches() {
        let mut w = MrtWriter::new();
        for i in 0..10u32 {
            w.write_update(&update(3000 + i, &[3000 + i, 3356], Some(3356), i as u64))
                .unwrap();
        }
        let bytes = w.into_bytes();
        let mut src = MrtSource::new(&bytes);
        let mut total = 0;
        loop {
            let batch = src.next_batch(3).unwrap();
            if batch.is_empty() {
                break;
            }
            assert!(batch.len() <= 3);
            total += batch.len();
        }
        assert_eq!(total, 10);
        assert_eq!(src.raw_entries(), 10);
        assert_eq!(src.stats().kept, 10);
    }

    #[test]
    fn mrt_source_matches_extract_tuples() {
        let mut w = MrtWriter::new();
        // Prepending + route-server style peers exercise sanitation.
        w.write_update(&update(3320, &[3320, 3320, 3356], Some(3356), 5))
            .unwrap();
        w.write_update(&update(6695, &[3320, 3356], None, 6))
            .unwrap();
        let bytes = w.into_bytes();

        let (batch_tuples, raw) = bgp_mrt::extract_tuples(&bytes).unwrap();
        let mut src = MrtSource::new(&bytes);
        let mut streamed = Vec::new();
        loop {
            let b = src.next_batch(1).unwrap();
            if b.is_empty() {
                break;
            }
            streamed.extend(b.into_iter().map(|e| e.tuple));
        }
        assert_eq!(streamed, batch_tuples);
        assert_eq!(src.raw_entries(), raw);
    }

    #[test]
    fn mrt_source_keeps_reserved_asns_like_the_batch_path() {
        // extract_tuples applies no registry filter; the default
        // MrtSource must not either, or real archives mentioning private
        // ASNs (64512+) would classify differently batch vs stream.
        let mut w = MrtWriter::new();
        w.write_update(&update(64512, &[64512, 3356], Some(3356), 1))
            .unwrap();
        let bytes = w.into_bytes();

        let (batch_tuples, _) = bgp_mrt::extract_tuples(&bytes).unwrap();
        assert_eq!(batch_tuples.len(), 1);
        let mut src = MrtSource::new(&bytes);
        let streamed = src.next_batch(16).unwrap();
        assert_eq!(streamed.len(), 1);
        assert_eq!(streamed[0].tuple, batch_tuples[0]);

        // The registry-filtered mode drops it, by request only.
        let mut strict = MrtSource::with_sanitizer(&bytes, Sanitizer::permissive());
        assert!(strict.next_batch(16).unwrap().is_empty());
        assert_eq!(strict.stats().dropped_asn, 1);
    }

    #[test]
    fn multi_prefix_update_emits_one_event() {
        // One update announcing N prefixes carries one (path, comm):
        // extract_tuples yields one tuple, so the stream must emit one
        // event — per-prefix emission would overcount with dedup off.
        let mut u = update(3320, &[3320, 3356], Some(3356), 9);
        u.announced.push(Prefix::v4([198, 51, 100, 0], 24));
        u.announced.push(Prefix::v4([203, 0, 113, 0], 24));
        let mut w = MrtWriter::new();
        w.write_update(&u).unwrap();
        let bytes = w.into_bytes();

        let (batch_tuples, _) = bgp_mrt::extract_tuples(&bytes).unwrap();
        let mut src = MrtSource::new(&bytes);
        let streamed = src.next_batch(16).unwrap();
        assert_eq!(batch_tuples.len(), 1);
        assert_eq!(streamed.len(), 1);
        assert_eq!(streamed[0].tuple, batch_tuples[0]);
        assert_eq!(src.stats().kept, 1);
    }

    #[test]
    fn day_source_error_is_sticky() {
        let mut w = MrtWriter::new();
        w.write_update(&update(1, &[1, 2], None, 0)).unwrap();
        let good = w.into_bytes();
        let mut corrupt = good.clone();
        corrupt.truncate(corrupt.len() - 3);

        let archive = DayArchive {
            project: "test",
            rib_bytes: corrupt,
            update_bytes: good.clone(),
            update_files: vec![good],
            rib_entries: 1,
            update_messages: 1,
        };
        let mut src = DaySource::new(&archive);
        assert!(src.next_batch(16).is_err());
        // A retry must not silently resume at the next chunk: the failed
        // chunk's tail is gone, so the day stays poisoned.
        assert!(src.next_batch(16).unwrap().is_empty());
        assert!(src.next_batch(16).unwrap().is_empty());
    }

    #[test]
    fn mrt_source_surfaces_decode_errors() {
        let mut w = MrtWriter::new();
        w.write_update(&update(1, &[1, 2], None, 0)).unwrap();
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 3);
        let mut src = MrtSource::new(&bytes);
        assert!(src.next_batch(64).is_err());
        // Sticky: after the error the source reports exhaustion.
        assert!(src.next_batch(64).unwrap().is_empty());
    }

    #[test]
    fn iter_source_drains() {
        let evs: Vec<StreamEvent> = (0..5)
            .map(|i| StreamEvent::new(i, PathCommTuple::new(path(&[1, 2]), CommunitySet::new())))
            .collect();
        let mut src = IterSource::new(evs.into_iter());
        assert_eq!(src.next_batch(2).unwrap().len(), 2);
        assert_eq!(src.next_batch(10).unwrap().len(), 3);
        assert!(src.next_batch(10).unwrap().is_empty());
    }
}
