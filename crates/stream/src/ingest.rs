//! Ingest layer: chunked sources of timestamped tuples.
//!
//! A [`TupleSource`] hands the pipeline bounded batches of
//! [`StreamEvent`]s instead of one giant tuple vector, so decode and
//! sanitation memory stay bounded by one record, not one archive. (The
//! MRT-backed sources still borrow the archive *bytes* as a slice — per
//! [`bgp_mrt::MrtReader`]'s design — so whole-file bytes are the
//! caller's to provide, e.g. via `fs::read` or an mmap; what never
//! materializes is the tuple vector.) Three sources cover the
//! workspace's data planes:
//!
//! * [`MrtSource`] — pulls records incrementally out of a
//!   [`bgp_mrt::TupleStream`], the §4.1 path-shape cleaning used by the
//!   batch [`bgp_mrt::extract_tuples`] itself (an optional
//!   [`Sanitizer`](bgp_infer::sanitize::Sanitizer) adds the registry
//!   filters on top);
//! * [`DaySource`] — walks a generated [`DayArchive`]'s chunks (RIB
//!   snapshot, then each per-bin update file) the way a poller walks a
//!   collector's published files;
//! * [`IterSource`] — adapts any in-memory event iterator (e.g. the
//!   [`bgp_sim::feed::UpdateFeed`] scenario stream).

use bgp_collector::archive::DayArchive;
use bgp_infer::prelude::{SanitationStats, Sanitizer};
use bgp_mrt::{MrtReader, MrtRecord, TupleStream};
use bgp_types::prelude::*;

/// One timestamped `(path, comm)` observation entering the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamEvent {
    /// Capture time, seconds since epoch (drives time-based epochs).
    pub timestamp: u64,
    /// The sanitized observation.
    pub tuple: PathCommTuple,
}

impl StreamEvent {
    /// Construct an event.
    pub fn new(timestamp: u64, tuple: PathCommTuple) -> Self {
        StreamEvent { timestamp, tuple }
    }
}

/// Errors a source can surface mid-stream.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying MRT bytes failed to decode.
    Mrt(bgp_mrt::MrtError),
    /// A [`QuarantinedSource`] hit its abort threshold: too much of the
    /// feed was malformed to keep skipping.
    QuarantineExceeded {
        /// Records/chunks quarantined when the threshold tripped.
        quarantined: u64,
        /// The configured abort threshold.
        threshold: u64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Mrt(e) => write!(f, "mrt decode: {e}"),
            IngestError::QuarantineExceeded {
                quarantined,
                threshold,
            } => write!(
                f,
                "quarantine threshold exceeded: {quarantined} malformed records/chunks (abort at {threshold})"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<bgp_mrt::MrtError> for IngestError {
    fn from(e: bgp_mrt::MrtError) -> Self {
        IngestError::Mrt(e)
    }
}

/// A pull-based source of event batches.
pub trait TupleSource {
    /// Produce up to `max` events. An empty batch means the source is
    /// exhausted. An error consumes the failing unit (record, chunk):
    /// callers may stop, or call again to continue with whatever the
    /// source can still deliver — [`QuarantinedSource`] wraps that
    /// retry-and-count policy for supervised pipelines.
    fn next_batch(&mut self, max: usize) -> Result<Vec<StreamEvent>, IngestError>;
}

/// Whether `ev` is a malformed observation a supervised pipeline must
/// quarantine rather than classify: AS0 anywhere in the path (RFC 7607
/// forbids AS0 on the wire; sanitized real feeds never produce it, so
/// it doubles as the fault-injection marker).
pub fn is_malformed(ev: &StreamEvent) -> bool {
    ev.tuple.path.asns().iter().any(|a| a.0 == 0)
}

/// A [`TupleSource`] wrapper that quarantines malformed input instead
/// of letting it poison the feed: decode errors are counted and the
/// source is re-polled (the failing unit was consumed), and malformed
/// events ([`is_malformed`]) are filtered out and counted. Once the
/// quarantine count passes `abort_threshold` (0 = never), the wrapper
/// aborts with [`IngestError::QuarantineExceeded`] — a feed that is
/// mostly garbage should stop the daemon, not silently serve nothing.
pub struct QuarantinedSource<'a> {
    inner: &'a mut dyn TupleSource,
    abort_threshold: u64,
    quarantined: u64,
}

impl<'a> QuarantinedSource<'a> {
    /// Wrap `inner`; abort after `abort_threshold` quarantined units
    /// (0 disables the abort).
    pub fn new(inner: &'a mut dyn TupleSource, abort_threshold: u64) -> Self {
        QuarantinedSource {
            inner,
            abort_threshold,
            quarantined: 0,
        }
    }

    /// Malformed records and failed chunks skipped so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    fn check(&self) -> Result<(), IngestError> {
        if self.abort_threshold > 0 && self.quarantined > self.abort_threshold {
            return Err(IngestError::QuarantineExceeded {
                quarantined: self.quarantined,
                threshold: self.abort_threshold,
            });
        }
        Ok(())
    }
}

impl TupleSource for QuarantinedSource<'_> {
    fn next_batch(&mut self, max: usize) -> Result<Vec<StreamEvent>, IngestError> {
        loop {
            let batch = match self.inner.next_batch(max) {
                Ok(b) => b,
                Err(e @ IngestError::QuarantineExceeded { .. }) => return Err(e),
                Err(_) => {
                    // The failing unit is consumed; count it and poll
                    // again — an exhausted inner source returns an
                    // empty batch next, ending the loop cleanly.
                    self.quarantined += 1;
                    self.check()?;
                    continue;
                }
            };
            if batch.is_empty() {
                return Ok(batch);
            }
            // Clean batches (the overwhelmingly common case) pass
            // through without a filter/reallocation round.
            if !batch.iter().any(is_malformed) {
                return Ok(batch);
            }
            let before = batch.len();
            let kept: Vec<StreamEvent> = batch.into_iter().filter(|ev| !is_malformed(ev)).collect();
            let skipped = (before - kept.len()) as u64;
            if skipped > 0 {
                self.quarantined += skipped;
                self.check()?;
            }
            if !kept.is_empty() {
                return Ok(kept);
            }
            // The whole batch was quarantined; pull again rather than
            // signal a false end-of-stream.
        }
    }
}

/// Streams one MRT archive's records through the §4.1 sanitation pipeline
/// without ever materializing the full tuple vector.
///
/// The default ([`MrtSource::new`]) wraps [`bgp_mrt::TupleStream`] — the
/// exact record-at-a-time extraction behind the batch
/// [`bgp_mrt::extract_tuples`] — so it applies path-shape cleaning only
/// and emits **one event per update message** (a multi-prefix
/// announcement carries one `(path, comm)`). Sharing that implementation
/// is what makes the stream/batch parity guarantee hold on arbitrary
/// archives, including ones mentioning reserved ASNs.
/// [`MrtSource::with_sanitizer`] layers the registry filters on top for
/// deployments that want them; that mode deliberately diverges from the
/// registry-less batch reference.
pub struct MrtSource<'a> {
    mode: Mode<'a>,
    done: bool,
}

enum Mode<'a> {
    /// Batch-parity reference: the same extraction the batch path runs.
    Shape(TupleStream<'a>),
    /// Registry overlay: raw records, filtered through
    /// [`Sanitizer::process`] (which owns the drop rules and stats).
    Registry {
        reader: MrtReader<'a>,
        sanitizer: Sanitizer,
        stats: SanitationStats,
        /// Entries decoded from the current record but not yet emitted
        /// (one TABLE_DUMP_V2 record carries a whole prefix group).
        pending: Vec<StreamEvent>,
        raw_entries: u64,
    },
}

impl<'a> MrtSource<'a> {
    /// Stream `bytes` with path-shape cleaning only — the batch
    /// [`bgp_mrt::extract_tuples`] semantics, record for record.
    pub fn new(bytes: &'a [u8]) -> Self {
        MrtSource {
            mode: Mode::Shape(TupleStream::new(bytes)),
            done: false,
        }
    }

    /// Stream `bytes` through a caller-provided registry-driven sanitizer
    /// (drops tuples mentioning unallocated ASNs or bogon prefixes, on
    /// top of the shape cleaning).
    pub fn with_sanitizer(bytes: &'a [u8], sanitizer: Sanitizer) -> Self {
        MrtSource {
            mode: Mode::Registry {
                reader: MrtReader::new(bytes),
                sanitizer,
                stats: SanitationStats::default(),
                pending: Vec::new(),
                raw_entries: 0,
            },
            done: false,
        }
    }

    /// Sanitation counters accumulated so far.
    pub fn stats(&self) -> SanitationStats {
        match &self.mode {
            Mode::Shape(s) => SanitationStats {
                offered: s.kept() + s.shape_dropped(),
                dropped_path: s.shape_dropped(),
                kept: s.kept(),
                ..SanitationStats::default()
            },
            Mode::Registry { stats, .. } => *stats,
        }
    }

    /// Raw MRT entries seen so far (Table 1's "entries" accounting).
    pub fn raw_entries(&self) -> u64 {
        match &self.mode {
            Mode::Shape(s) => s.raw_entries(),
            Mode::Registry { raw_entries, .. } => *raw_entries,
        }
    }
}

/// Registry-filter one entry into at most one event. `prefix_ok` reports
/// whether any announced prefix passed the registry — the batch pipeline
/// keeps an update's tuple as long as any of its prefixes does (the
/// tuple is identical across them); the rest of the rules and the stats
/// bookkeeping live in [`Sanitizer::process`].
#[allow(clippy::too_many_arguments)]
fn registry_sanitize_into(
    sanitizer: &Sanitizer,
    stats: &mut SanitationStats,
    peer: Asn,
    raw_path: &RawAsPath,
    prefix_ok: bool,
    comm: &CommunitySet,
    ts: u64,
    out: &mut Vec<StreamEvent>,
) {
    if !prefix_ok {
        stats.offered += 1;
        stats.dropped_prefix += 1;
        return;
    }
    if let Some(t) = sanitizer.process(peer, raw_path, None, comm, stats) {
        out.push(StreamEvent::new(ts, t));
    }
}

impl TupleSource for MrtSource<'_> {
    fn next_batch(&mut self, max: usize) -> Result<Vec<StreamEvent>, IngestError> {
        let mut out = Vec::new();
        if self.done {
            return Ok(out);
        }
        match &mut self.mode {
            Mode::Shape(stream) => {
                while out.len() < max {
                    match stream.next() {
                        None => {
                            self.done = true;
                            break;
                        }
                        Some(Err(e)) => {
                            self.done = true;
                            return Err(e.into());
                        }
                        Some(Ok((ts, tuple))) => out.push(StreamEvent::new(ts, tuple)),
                    }
                }
            }
            Mode::Registry {
                reader,
                sanitizer,
                stats,
                pending,
                raw_entries,
            } => {
                while out.len() < max {
                    if let Some(ev) = pending.pop() {
                        out.push(ev);
                        continue;
                    }
                    match reader.next() {
                        None => {
                            self.done = true;
                            break;
                        }
                        Some(Err(e)) => {
                            self.done = true;
                            return Err(e.into());
                        }
                        Some(Ok(MrtRecord::PeerIndex(_))) => {}
                        Some(Ok(MrtRecord::Update(u))) => {
                            *raw_entries += 1;
                            if u.announced.is_empty() {
                                continue; // withdrawals carry no usable (path, comm)
                            }
                            let prefix_ok = u
                                .announced
                                .iter()
                                .any(|p| sanitizer.prefix_registry().is_allocated(p));
                            registry_sanitize_into(
                                sanitizer,
                                stats,
                                u.peer_asn,
                                &u.attributes.as_path,
                                prefix_ok,
                                &u.attributes.communities,
                                u.timestamp,
                                pending,
                            );
                            pending.reverse(); // popped back-to-front above
                        }
                        Some(Ok(MrtRecord::RibEntries(entries))) => {
                            for e in &entries {
                                *raw_entries += 1;
                                let prefix_ok = sanitizer.prefix_registry().is_allocated(&e.prefix);
                                registry_sanitize_into(
                                    sanitizer,
                                    stats,
                                    e.peer_asn,
                                    &e.attributes.as_path,
                                    prefix_ok,
                                    &e.attributes.communities,
                                    e.originated,
                                    pending,
                                );
                            }
                            pending.reverse();
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Streams a generated collector day — RIB snapshot, then each update bin
/// in publication order — as one continuous source.
pub struct DaySource<'a> {
    chunks: Vec<&'a [u8]>,
    current: Option<MrtSource<'a>>,
    next_chunk: usize,
    stats: SanitationStats,
    raw_entries: u64,
    quarantined_chunks: u64,
}

impl<'a> DaySource<'a> {
    /// Walk `archive`'s chunks (see [`DayArchive::chunks`]).
    pub fn new(archive: &'a DayArchive) -> Self {
        DaySource {
            chunks: archive.chunks().collect(),
            current: None,
            next_chunk: 0,
            stats: SanitationStats::default(),
            raw_entries: 0,
            quarantined_chunks: 0,
        }
    }

    /// Sanitation counters accumulated across finished chunks.
    pub fn stats(&self) -> SanitationStats {
        self.stats
    }

    /// Raw MRT entries seen across finished chunks.
    pub fn raw_entries(&self) -> u64 {
        self.raw_entries
    }

    /// Chunks abandoned after a decode error (their tails are lost).
    pub fn quarantined_chunks(&self) -> u64 {
        self.quarantined_chunks
    }
}

impl TupleSource for DaySource<'_> {
    fn next_batch(&mut self, max: usize) -> Result<Vec<StreamEvent>, IngestError> {
        loop {
            if let Some(src) = self.current.as_mut() {
                let batch = match src.next_batch(max) {
                    Ok(b) => b,
                    Err(e) => {
                        // Quarantine the chunk: its decoded prefix was
                        // already delivered and its tail is lost, so
                        // surface the error once (the caller counts it)
                        // and resume with the next chunk on re-poll.
                        self.quarantined_chunks += 1;
                        self.current = None;
                        return Err(e);
                    }
                };
                if !batch.is_empty() {
                    return Ok(batch);
                }
                self.stats = add_stats(self.stats, src.stats());
                self.raw_entries += src.raw_entries();
                self.current = None;
            }
            match self.chunks.get(self.next_chunk) {
                None => return Ok(Vec::new()),
                Some(bytes) => {
                    self.current = Some(MrtSource::new(bytes));
                    self.next_chunk += 1;
                }
            }
        }
    }
}

fn add_stats(a: SanitationStats, b: SanitationStats) -> SanitationStats {
    SanitationStats {
        offered: a.offered + b.offered,
        dropped_asn: a.dropped_asn + b.dropped_asn,
        dropped_prefix: a.dropped_prefix + b.dropped_prefix,
        dropped_path: a.dropped_path + b.dropped_path,
        kept: a.kept + b.kept,
    }
}

/// Adapts any event iterator (a simulated feed, a replayed trace) into a
/// [`TupleSource`].
pub struct IterSource<I> {
    inner: I,
}

impl<I: Iterator<Item = StreamEvent>> IterSource<I> {
    /// Wrap an iterator.
    pub fn new(inner: I) -> Self {
        IterSource { inner }
    }
}

impl<I: Iterator<Item = StreamEvent>> TupleSource for IterSource<I> {
    fn next_batch(&mut self, max: usize) -> Result<Vec<StreamEvent>, IngestError> {
        Ok(self.inner.by_ref().take(max).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_mrt::MrtWriter;

    fn update(peer: u32, path: &[u32], tag: Option<u32>, ts: u64) -> UpdateMessage {
        UpdateMessage::announcement(
            Asn(peer),
            ts,
            Prefix::v4([203, 0, 114, 0], 24),
            RawAsPath::from_sequence(path.iter().map(|&v| Asn(v)).collect()),
            CommunitySet::from_iter(tag.map(|a| AnyCommunity::tag_for(Asn(a), 100))),
        )
    }

    #[test]
    fn mrt_source_streams_in_batches() {
        let mut w = MrtWriter::new();
        for i in 0..10u32 {
            w.write_update(&update(3000 + i, &[3000 + i, 3356], Some(3356), i as u64))
                .unwrap();
        }
        let bytes = w.into_bytes();
        let mut src = MrtSource::new(&bytes);
        let mut total = 0;
        loop {
            let batch = src.next_batch(3).unwrap();
            if batch.is_empty() {
                break;
            }
            assert!(batch.len() <= 3);
            total += batch.len();
        }
        assert_eq!(total, 10);
        assert_eq!(src.raw_entries(), 10);
        assert_eq!(src.stats().kept, 10);
    }

    #[test]
    fn mrt_source_matches_extract_tuples() {
        let mut w = MrtWriter::new();
        // Prepending + route-server style peers exercise sanitation.
        w.write_update(&update(3320, &[3320, 3320, 3356], Some(3356), 5))
            .unwrap();
        w.write_update(&update(6695, &[3320, 3356], None, 6))
            .unwrap();
        let bytes = w.into_bytes();

        let (batch_tuples, raw) = bgp_mrt::extract_tuples(&bytes).unwrap();
        let mut src = MrtSource::new(&bytes);
        let mut streamed = Vec::new();
        loop {
            let b = src.next_batch(1).unwrap();
            if b.is_empty() {
                break;
            }
            streamed.extend(b.into_iter().map(|e| e.tuple));
        }
        assert_eq!(streamed, batch_tuples);
        assert_eq!(src.raw_entries(), raw);
    }

    #[test]
    fn mrt_source_keeps_reserved_asns_like_the_batch_path() {
        // extract_tuples applies no registry filter; the default
        // MrtSource must not either, or real archives mentioning private
        // ASNs (64512+) would classify differently batch vs stream.
        let mut w = MrtWriter::new();
        w.write_update(&update(64512, &[64512, 3356], Some(3356), 1))
            .unwrap();
        let bytes = w.into_bytes();

        let (batch_tuples, _) = bgp_mrt::extract_tuples(&bytes).unwrap();
        assert_eq!(batch_tuples.len(), 1);
        let mut src = MrtSource::new(&bytes);
        let streamed = src.next_batch(16).unwrap();
        assert_eq!(streamed.len(), 1);
        assert_eq!(streamed[0].tuple, batch_tuples[0]);

        // The registry-filtered mode drops it, by request only.
        let mut strict = MrtSource::with_sanitizer(&bytes, Sanitizer::permissive());
        assert!(strict.next_batch(16).unwrap().is_empty());
        assert_eq!(strict.stats().dropped_asn, 1);
    }

    #[test]
    fn multi_prefix_update_emits_one_event() {
        // One update announcing N prefixes carries one (path, comm):
        // extract_tuples yields one tuple, so the stream must emit one
        // event — per-prefix emission would overcount with dedup off.
        let mut u = update(3320, &[3320, 3356], Some(3356), 9);
        u.announced.push(Prefix::v4([198, 51, 100, 0], 24));
        u.announced.push(Prefix::v4([203, 0, 113, 0], 24));
        let mut w = MrtWriter::new();
        w.write_update(&u).unwrap();
        let bytes = w.into_bytes();

        let (batch_tuples, _) = bgp_mrt::extract_tuples(&bytes).unwrap();
        let mut src = MrtSource::new(&bytes);
        let streamed = src.next_batch(16).unwrap();
        assert_eq!(batch_tuples.len(), 1);
        assert_eq!(streamed.len(), 1);
        assert_eq!(streamed[0].tuple, batch_tuples[0]);
        assert_eq!(src.stats().kept, 1);
    }

    #[test]
    fn day_source_quarantines_bad_chunk_and_continues() {
        let mut w = MrtWriter::new();
        w.write_update(&update(1, &[1, 2], None, 0)).unwrap();
        let good = w.into_bytes();
        let mut corrupt = good.clone();
        corrupt.truncate(corrupt.len() - 3);

        let archive = DayArchive {
            project: "test",
            rib_bytes: corrupt,
            update_bytes: good.clone(),
            update_files: vec![good],
            rib_entries: 1,
            update_messages: 1,
        };
        let mut src = DaySource::new(&archive);
        // The corrupt RIB chunk surfaces its error exactly once...
        assert!(src.next_batch(16).is_err());
        assert_eq!(src.quarantined_chunks(), 1);
        // ...then the day continues with the good update chunk instead
        // of staying poisoned.
        assert_eq!(src.next_batch(16).unwrap().len(), 1);
        assert!(src.next_batch(16).unwrap().is_empty());
        assert_eq!(src.quarantined_chunks(), 1);
    }

    #[test]
    fn quarantined_source_skips_errors_and_malformed_events() {
        let mut w = MrtWriter::new();
        w.write_update(&update(1, &[1, 2], None, 0)).unwrap();
        let good = w.into_bytes();
        let mut corrupt = good.clone();
        corrupt.truncate(corrupt.len() - 3);

        let archive = DayArchive {
            project: "test",
            rib_bytes: corrupt,
            update_bytes: good.clone(),
            update_files: vec![good],
            rib_entries: 1,
            update_messages: 1,
        };
        let mut inner = DaySource::new(&archive);
        let mut src = QuarantinedSource::new(&mut inner, 0);
        // The corrupt chunk is absorbed: callers only see good events.
        assert_eq!(src.next_batch(16).unwrap().len(), 1);
        assert!(src.next_batch(16).unwrap().is_empty());
        assert_eq!(src.quarantined(), 1);

        // Malformed (AS0) events are filtered and counted.
        let evs = vec![
            StreamEvent::new(0, PathCommTuple::new(path(&[0, 2]), CommunitySet::new())),
            StreamEvent::new(1, PathCommTuple::new(path(&[1, 2]), CommunitySet::new())),
        ];
        let mut inner = IterSource::new(evs.into_iter());
        let mut src = QuarantinedSource::new(&mut inner, 0);
        let batch = src.next_batch(16).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].timestamp, 1);
        assert_eq!(src.quarantined(), 1);
    }

    #[test]
    fn quarantined_source_aborts_past_threshold() {
        let evs: Vec<StreamEvent> = (0..4)
            .map(|i| StreamEvent::new(i, PathCommTuple::new(path(&[0, 2]), CommunitySet::new())))
            .collect();
        let mut inner = IterSource::new(evs.into_iter());
        let mut src = QuarantinedSource::new(&mut inner, 2);
        let err = src.next_batch(1).unwrap_err();
        assert!(matches!(err, IngestError::QuarantineExceeded { .. }));
    }

    #[test]
    fn mrt_source_surfaces_decode_errors() {
        let mut w = MrtWriter::new();
        w.write_update(&update(1, &[1, 2], None, 0)).unwrap();
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 3);
        let mut src = MrtSource::new(&bytes);
        assert!(src.next_batch(64).is_err());
        // Sticky: after the error the source reports exhaustion.
        assert!(src.next_batch(64).unwrap().is_empty());
    }

    #[test]
    fn iter_source_drains() {
        let evs: Vec<StreamEvent> = (0..5)
            .map(|i| StreamEvent::new(i, PathCommTuple::new(path(&[1, 2]), CommunitySet::new())))
            .collect();
        let mut src = IterSource::new(evs.into_iter());
        assert_eq!(src.next_batch(2).unwrap().len(), 2);
        assert_eq!(src.next_batch(10).unwrap().len(), 3);
        assert!(src.next_batch(10).unwrap().is_empty());
    }
}
