//! # bgp-stream
//!
//! Streaming, sharded, incremental inference over `(path, comm)` tuples —
//! the live counterpart of the batch [`bgp_infer::engine::InferenceEngine`].
//!
//! The batch engine answers "given this finished dataset, classify every
//! AS". A route collector, though, never finishes: RIB snapshots land
//! every few hours and update files every few minutes. This crate keeps
//! per-AS classifications continuously up to date over such a feed:
//!
//! ```text
//!            ┌──────────── ingest ─────────────┐
//! MRT bytes ─┤ MrtSource: chunked record pull  │──┐
//! sim feed ──┤ IterSource: any event iterator  │  │ StreamEvent batches
//! DayArchive┄┤ DaySource: per-bin update files │  │
//!            └─────────────────────────────────┘  ▼
//!            ┌─────────────── shard ────────────────┐
//!            │ route(tuple) = fnv(on-path ASNs) % N │  N shards, each a
//!            │ private dedup set + tuple store      │  private delta map
//!            └──────────────────────────────────────┘
//!                              │ CounterStore::merge at phase boundaries
//!                              ▼
//!            ┌─────────────── epoch ────────────────┐
//!            │ EpochPolicy (tuple count / time span)│ → EpochSnapshot:
//!            │ coordinator recount, versioned       │   classes + flips
//!            └──────────────────────────────────────┘
//!                              │
//!                              ▼
//!            StreamOutcome: class_of / reclassify / db export
//! ```
//!
//! ## Exactness
//!
//! The paper's algorithm (Listing 1) transfers knowledge *between* path
//! columns through counter thresholds, so classifications are a function
//! of the whole tuple set — there is no per-tuple shortcut that preserves
//! its semantics. This pipeline therefore keeps the phase structure: at
//! every epoch boundary the coordinator re-runs the column loop, with each
//! phase counted **shard-parallel** through the reentrant
//! [`bgp_infer::engine::count_tuple_at`] primitive and shard deltas merged
//! via [`CounterStore::merge`](bgp_infer::counters::CounterStore::merge).
//! Because counting within a phase is order-free, the result is
//! byte-identical to the batch engine on the same tuples — for any shard
//! count — which the parity tests in `tests/stream_parity.rs` pin down.
//! What streaming buys is (a) bounded ingest memory (no full-archive tuple
//! vector), (b) parallel counting across shards, and (c) *live* answers:
//! every epoch yields a monotonically versioned snapshot plus the class
//! flips since the last one, instead of one answer at the end of the world.
//!
//! ```
//! use bgp_stream::prelude::*;
//! use bgp_types::prelude::*;
//!
//! let mut pipe = StreamPipeline::new(StreamConfig {
//!     shards: 2,
//!     epoch: EpochPolicy::every_events(2),
//!     ..Default::default()
//! });
//! // Peer AS5 tags; AS1 forwards AS5's tag.
//! let mk = |p: &[u32], tags: &[u32]| PathCommTuple::new(
//!     path(p),
//!     CommunitySet::from_iter(tags.iter().map(|&a| AnyCommunity::tag_for(Asn(a), 100))),
//! );
//! pipe.push(StreamEvent::new(10, mk(&[5, 9], &[5])));
//! pipe.push(StreamEvent::new(20, mk(&[1, 5, 9], &[1, 5])));
//! let out = pipe.finish();
//! assert_eq!(out.class_of(Asn(5)).tagging.code(), 't');
//! assert_eq!(out.class_of(Asn(1)).forwarding.code(), 'f');
//! assert!(!out.snapshots.is_empty());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod epoch;
pub mod ingest;
pub mod outcome;
pub mod pipeline;
pub mod shard;

/// Commonly used items.
pub mod prelude {
    pub use crate::epoch::{ClassFlip, EpochPolicy, EpochSnapshot};
    pub use crate::ingest::{
        DaySource, IterSource, MrtSource, QuarantinedSource, StreamEvent, TupleSource,
    };
    pub use crate::outcome::StreamOutcome;
    pub use crate::pipeline::{StreamConfig, StreamPipeline};
    pub use crate::shard::ShardSet;
}
