//! Query/export layer: the finished stream's answer surface.

use crate::epoch::{ClassFlip, EpochSnapshot};
use bgp_infer::classify::Class;
use bgp_infer::counters::Thresholds;
use bgp_infer::engine::InferenceOutcome;
use bgp_types::prelude::*;
use std::sync::Arc;

/// The result of a completed streaming run — the streaming mirror of
/// [`InferenceOutcome`], with the epoch history attached.
///
/// `class_of` / `classes` / `reclassify` behave exactly as on the batch
/// outcome (and, by the parity guarantee, *return* exactly what a batch
/// run over the same tuples would). [`export_db`](StreamOutcome::export_db)
/// writes the paper's release format through [`bgp_infer::db`], so a
/// streaming deployment publishes byte-compatible databases.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Final inference state (identical shape to a batch run).
    pub outcome: InferenceOutcome,
    /// Every sealed epoch, in order. Never empty. Snapshots are shared
    /// ([`Arc`]) with any serving layer that retained them mid-stream.
    pub snapshots: Vec<Arc<EpochSnapshot>>,
    /// Total events ingested.
    pub total_events: u64,
    /// Unique tuples stored.
    pub unique_tuples: usize,
    /// Dedup hits observed.
    pub duplicates: u64,
    /// Stored-tuple count per shard (load-balance introspection).
    pub shard_loads: Vec<usize>,
}

impl StreamOutcome {
    /// Final classification of one AS.
    pub fn class_of(&self, asn: Asn) -> Class {
        self.outcome.class_of(asn)
    }

    /// Final classification of every counted AS, sorted by ASN.
    pub fn classes(&self) -> Vec<(Asn, Class)> {
        self.outcome.classes()
    }

    /// Re-classify every counted AS under different thresholds without
    /// re-counting (same approximation the batch engine documents).
    pub fn reclassify(&self, thresholds: Thresholds) -> Vec<(Asn, Class)> {
        self.outcome.reclassify(thresholds)
    }

    /// Number of sealed epochs.
    pub fn epochs(&self) -> usize {
        self.snapshots.len()
    }

    /// All class flips across the whole run, in epoch order.
    pub fn all_flips(&self) -> impl Iterator<Item = (u64, &ClassFlip)> {
        self.snapshots
            .iter()
            .flat_map(|s| s.flips.iter().map(move |f| (s.epoch, f)))
    }

    /// Export the final state in the paper's release db format.
    pub fn export_db(&self) -> String {
        bgp_infer::db::export(&self.outcome)
    }

    /// Export one historical epoch in the release db format. `None` for
    /// an out-of-range epoch or one compacted away by
    /// `StreamConfig::compact_history`.
    pub fn export_epoch_db(&self, epoch: usize) -> Option<String> {
        self.snapshots
            .get(epoch)
            .and_then(|s| s.outcome())
            .map(bgp_infer::db::export)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochPolicy;
    use crate::ingest::StreamEvent;
    use crate::pipeline::{StreamConfig, StreamPipeline};
    use bgp_infer::classify::TaggingClass;

    fn run() -> StreamOutcome {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(2),
            ..Default::default()
        });
        let mk = |p: &[u32], tags: &[u32]| {
            PathCommTuple::new(
                path(p),
                CommunitySet::from_iter(tags.iter().map(|&a| AnyCommunity::tag_for(Asn(a), 100))),
            )
        };
        pipe.push(StreamEvent::new(10, mk(&[5, 9], &[5])));
        pipe.push(StreamEvent::new(20, mk(&[1, 5, 9], &[1, 5])));
        pipe.push(StreamEvent::new(30, mk(&[2, 9], &[])));
        pipe.finish()
    }

    #[test]
    fn query_surface_mirrors_batch_outcome() {
        let out = run();
        assert_eq!(out.class_of(Asn(5)).tagging, TaggingClass::Tagger);
        let classes = out.classes();
        assert!(classes.windows(2).all(|w| w[0].0 < w[1].0));
        let relaxed = out.reclassify(Thresholds::uniform(0.5));
        assert_eq!(relaxed.len(), classes.len());
    }

    #[test]
    fn db_exports_roundtrip() {
        let out = run();
        let text = out.export_db();
        let back = bgp_infer::db::import(&text).unwrap();
        for (asn, class) in out.classes() {
            assert_eq!(back.class_of(asn), class);
        }
        // Historical epoch export exists for every sealed epoch.
        assert_eq!(out.epochs(), 2);
        assert!(out.export_epoch_db(0).is_some());
        assert!(out.export_epoch_db(5).is_none());
    }

    #[test]
    fn flip_stream_covers_history() {
        let out = run();
        let flips: Vec<_> = out.all_flips().collect();
        assert!(!flips.is_empty());
        // Epoch indices are ordered.
        assert!(flips.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
