//! The coordinator: ingest → shard → epoch, in one push-driven object.

use crate::epoch::{diff_classes, EpochPolicy, EpochSnapshot};
use crate::ingest::{IngestError, StreamEvent, TupleSource};
use crate::outcome::StreamOutcome;
use crate::shard::ShardSet;
use bgp_infer::classify::Class;
use bgp_infer::counters::Thresholds;
use bgp_infer::engine::InferenceOutcome;
use bgp_types::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a streaming inference run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Worker shards (1 = serial coordinator-thread counting).
    pub shards: usize,
    /// When to seal epochs.
    pub epoch: EpochPolicy,
    /// Classification thresholds (shared with the batch engine).
    pub thresholds: Thresholds,
    /// Optional cap on the deepest path column processed.
    pub max_index: Option<usize>,
    /// Enforce Cond1 (clean upstream) — see `InferenceConfig`.
    pub enforce_cond1: bool,
    /// Enforce Cond2 (visible downstream tagger) — see `InferenceConfig`.
    pub enforce_cond2: bool,
    /// Deduplicate identical tuples (the paper's `TupleSet` semantics).
    /// Disable to mirror a batch run over a raw (non-deduplicated) slice.
    pub dedup: bool,
    /// Keep only the latest snapshot's full counter store, dropping the
    /// `outcome` of older epochs as new ones seal. Classes and flips are
    /// kept for every epoch either way; what compaction costs is
    /// [`StreamOutcome::export_epoch_db`]/`reclassify` on *historical*
    /// epochs. On a long-lived stream the history would otherwise grow by
    /// a full per-AS counter table every epoch, without bound.
    pub compact_history: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 4,
            epoch: EpochPolicy::default(),
            thresholds: Thresholds::default(),
            max_index: None,
            enforce_cond1: true,
            enforce_cond2: true,
            dedup: true,
            compact_history: false,
        }
    }
}

/// Push-driven streaming inference.
///
/// Feed events with [`push`](StreamPipeline::push) /
/// [`push_batch`](StreamPipeline::push_batch) or drain a whole
/// [`TupleSource`] with [`drive`](StreamPipeline::drive); epochs seal
/// automatically per the [`EpochPolicy`], and [`finish`](StreamPipeline::finish)
/// seals the trailing partial epoch and returns the [`StreamOutcome`].
#[derive(Debug)]
pub struct StreamPipeline {
    cfg: StreamConfig,
    shards: ShardSet,
    snapshots: Vec<Arc<EpochSnapshot>>,
    prev_classes: HashMap<Asn, Class>,
    events_in_epoch: u64,
    total_events: u64,
    epoch_start_ts: Option<u64>,
    last_ts: u64,
}

impl StreamPipeline {
    /// New pipeline.
    pub fn new(cfg: StreamConfig) -> Self {
        let shards = ShardSet::new(cfg.shards, cfg.dedup);
        StreamPipeline {
            cfg,
            shards,
            snapshots: Vec::new(),
            prev_classes: HashMap::new(),
            events_in_epoch: 0,
            total_events: 0,
            epoch_start_ts: None,
            last_ts: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Events ingested so far.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Unique tuples stored so far.
    pub fn stored_tuples(&self) -> usize {
        self.shards.stored_tuples()
    }

    /// Distinct ASNs interned across the shard compiled stores (shards
    /// intern independently; an AS spanning shards counts per shard).
    pub fn interned_asns(&self) -> usize {
        self.shards.interned_asns()
    }

    /// Total path positions held in the shard compiled-store id arenas.
    pub fn arena_hops(&self) -> usize {
        self.shards.arena_hops()
    }

    /// Dedup hits observed so far.
    pub fn duplicates(&self) -> u64 {
        self.shards.duplicates()
    }

    /// Stored-tuple count per shard so far (load-balance introspection).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.shard_loads()
    }

    /// Sealed snapshots so far. Snapshots are reference-counted so a
    /// serving layer can retain and publish them ([`Arc::clone`] is a
    /// pointer copy) while ingestion keeps running.
    pub fn snapshots(&self) -> &[Arc<EpochSnapshot>] {
        &self.snapshots
    }

    /// The latest sealed snapshot, if any epoch has sealed.
    pub fn latest(&self) -> Option<&Arc<EpochSnapshot>> {
        self.snapshots.last()
    }

    /// Live classification of one AS as of the latest sealed epoch
    /// ([`Class::NONE`] before the first seal).
    pub fn class_of(&self, asn: Asn) -> Class {
        self.latest().map_or(Class::NONE, |s| s.class_of(asn))
    }

    /// Ingest one event. Returns the snapshot sealed by this event, if
    /// the epoch policy tripped.
    pub fn push(&mut self, ev: StreamEvent) -> Option<&Arc<EpochSnapshot>> {
        self.epoch_start_ts.get_or_insert(ev.timestamp);
        self.last_ts = ev.timestamp;
        self.total_events += 1;
        self.events_in_epoch += 1;
        self.shards.push(ev.tuple);

        let span = self
            .last_ts
            .saturating_sub(self.epoch_start_ts.unwrap_or(self.last_ts));
        if self.cfg.epoch.should_seal(self.events_in_epoch, span) {
            Some(self.seal_epoch())
        } else {
            None
        }
    }

    /// Ingest a batch; returns how many epochs sealed.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = StreamEvent>) -> usize {
        let before = self.snapshots.len();
        for ev in events {
            self.push(ev);
        }
        self.snapshots.len() - before
    }

    /// Drain a source to exhaustion in `batch`-sized pulls. Returns how
    /// many epochs sealed. Errors stop ingestion at the failing record
    /// (everything already pushed stays counted).
    pub fn drive(
        &mut self,
        source: &mut dyn TupleSource,
        batch: usize,
    ) -> Result<usize, IngestError> {
        let before = self.snapshots.len();
        loop {
            let events = source.next_batch(batch.max(1))?;
            if events.is_empty() {
                break;
            }
            self.push_batch(events);
        }
        Ok(self.snapshots.len() - before)
    }

    /// Force-seal the running epoch: recount everything stored (phases
    /// shard-parallel), version the classifications, and diff against the
    /// previous snapshot. Idempotent on an empty epoch only in the sense
    /// that it still produces a (possibly flip-free) snapshot.
    pub fn seal_epoch(&mut self) -> &Arc<EpochSnapshot> {
        let (counters, deepest_active_index) = self.shards.recount(
            &self.cfg.thresholds,
            self.cfg.max_index,
            self.cfg.enforce_cond1,
            self.cfg.enforce_cond2,
            self.cfg.shards > 1,
        );
        let outcome = InferenceOutcome {
            counters,
            thresholds: self.cfg.thresholds,
            deepest_active_index,
        };
        let classes = outcome.classes();
        let flips = diff_classes(&self.prev_classes, &classes);
        for &(asn, class) in &classes {
            self.prev_classes.insert(asn, class);
        }
        let epoch = self.snapshots.len() as u64;
        let snapshot = EpochSnapshot {
            epoch,
            version: epoch + 1,
            sealed_at: self.last_ts,
            events: self.events_in_epoch,
            total_events: self.total_events,
            unique_tuples: self.shards.stored_tuples(),
            outcome: Some(outcome),
            classes,
            flips,
        };
        self.events_in_epoch = 0;
        self.epoch_start_ts = None;
        if self.cfg.compact_history {
            if let Some(prev) = self.snapshots.last_mut() {
                // A shared snapshot (e.g. one a serving layer still
                // publishes) is cloned before stripping, so external
                // holders keep their full counter store; only the
                // pipeline's history copy is compacted.
                Arc::make_mut(prev).outcome = None;
            }
        }
        self.snapshots.push(Arc::new(snapshot));
        self.snapshots.last().expect("just pushed")
    }

    /// Seal any trailing partial epoch and return the final outcome.
    pub fn finish(mut self) -> StreamOutcome {
        if self.events_in_epoch > 0 || self.snapshots.is_empty() {
            self.seal_epoch();
        }
        let last = self.snapshots.last().expect("finish always seals once");
        StreamOutcome {
            outcome: last
                .outcome
                .clone()
                .expect("latest snapshot is never compacted"),
            total_events: self.total_events,
            unique_tuples: self.shards.stored_tuples(),
            duplicates: self.shards.duplicates(),
            shard_loads: self.shards.shard_loads(),
            snapshots: self.snapshots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::StreamEvent;
    use bgp_infer::classify::TaggingClass;

    fn tag_tuple(p: &[u32], uppers: &[u32]) -> PathCommTuple {
        PathCommTuple::new(
            path(p),
            CommunitySet::from_iter(uppers.iter().map(|&u| AnyCommunity::tag_for(Asn(u), 100))),
        )
    }

    #[test]
    fn epochs_seal_by_event_count() {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(5),
            ..Default::default()
        });
        for i in 0..12u64 {
            pipe.push(StreamEvent::new(i, tag_tuple(&[1, 9], &[1])));
        }
        assert_eq!(pipe.snapshots().len(), 2);
        let out = pipe.finish(); // trailing 2 events seal a third epoch
        assert_eq!(out.snapshots.len(), 3);
        assert_eq!(out.snapshots[0].version, 1);
        assert_eq!(out.snapshots[2].version, 3);
        assert_eq!(out.total_events, 12);
    }

    #[test]
    fn epochs_seal_by_time_span() {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 1,
            epoch: EpochPolicy::every_span(100),
            ..Default::default()
        });
        assert!(pipe
            .push(StreamEvent::new(1_000, tag_tuple(&[1, 9], &[1])))
            .is_none());
        assert!(pipe
            .push(StreamEvent::new(1_050, tag_tuple(&[2, 9], &[])))
            .is_none());
        let sealed = pipe.push(StreamEvent::new(1_100, tag_tuple(&[1, 8], &[1])));
        assert!(sealed.is_some());
        assert_eq!(sealed.unwrap().sealed_at, 1_100);
    }

    #[test]
    fn live_class_updates_between_epochs() {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(1),
            ..Default::default()
        });
        assert_eq!(pipe.class_of(Asn(1)), Class::NONE);
        pipe.push(StreamEvent::new(0, tag_tuple(&[1, 9], &[1])));
        assert_eq!(pipe.class_of(Asn(1)).tagging, TaggingClass::Tagger);
        // A contradicting observation flips 1 to undecided next epoch.
        pipe.push(StreamEvent::new(1, tag_tuple(&[1, 8], &[])));
        assert_eq!(pipe.class_of(Asn(1)).tagging, TaggingClass::Undecided);
        let flips = &pipe.latest().unwrap().flips;
        assert!(flips.iter().any(|f| f.asn == Asn(1)));
    }

    #[test]
    fn compact_history_keeps_only_latest_outcome() {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 1,
            epoch: EpochPolicy::every_events(2),
            compact_history: true,
            ..Default::default()
        });
        for i in 0..6u64 {
            pipe.push(StreamEvent::new(i, tag_tuple(&[1, 9], &[1])));
        }
        let out = pipe.finish();
        assert_eq!(out.snapshots.len(), 3);
        assert!(out.snapshots[..2].iter().all(|s| s.outcome.is_none()));
        assert!(out.snapshots.last().unwrap().outcome.is_some());
        // Compacted epochs still answer class queries and keep flips;
        // only their counter-store exports are gone.
        assert_eq!(out.snapshots[0].class_of(Asn(1)).tagging.code(), 't');
        assert!(!out.snapshots[0].flips.is_empty());
        assert!(out.export_epoch_db(0).is_none());
        assert!(out.export_epoch_db(2).is_some());
    }

    #[test]
    fn empty_stream_finishes_clean() {
        let out = StreamPipeline::new(StreamConfig::default()).finish();
        assert_eq!(out.total_events, 0);
        assert_eq!(out.snapshots.len(), 1);
        assert!(out.outcome.counters.is_empty());
    }
}
