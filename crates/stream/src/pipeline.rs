//! The coordinator: ingest → shard → epoch, in one push-driven object.

use crate::epoch::{ClassFlip, EpochPolicy, EpochSnapshot};
use crate::ingest::{IngestError, StreamEvent, TupleSource};
use crate::outcome::StreamOutcome;
use crate::shard::ShardSet;
use bgp_infer::classify::Class;
use bgp_infer::compiled::DenseOutcome;
use bgp_infer::counters::Thresholds;
use bgp_types::prelude::*;
use obs::journal::JournalKind;
use obs::trace::TraceStore;
use obs::{Histogram, Journal};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a streaming inference run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Worker shards (1 = serial coordinator-thread counting).
    pub shards: usize,
    /// When to seal epochs.
    pub epoch: EpochPolicy,
    /// Classification thresholds (shared with the batch engine).
    pub thresholds: Thresholds,
    /// Optional cap on the deepest path column processed.
    pub max_index: Option<usize>,
    /// Enforce Cond1 (clean upstream) — see `InferenceConfig`.
    pub enforce_cond1: bool,
    /// Enforce Cond2 (visible downstream tagger) — see `InferenceConfig`.
    pub enforce_cond2: bool,
    /// Deduplicate identical tuples (the paper's `TupleSet` semantics).
    /// Disable to mirror a batch run over a raw (non-deduplicated) slice.
    pub dedup: bool,
    /// Keep only the latest snapshot's full counter state, dropping the
    /// dense outcome of older epochs as new ones seal. Classes and flips
    /// are kept for every epoch either way; what compaction costs is
    /// [`StreamOutcome::export_epoch_db`]/`reclassify` on *historical*
    /// epochs. On a long-lived stream the history would otherwise grow by
    /// a full per-AS counter column every epoch, without bound.
    pub compact_history: bool,
    /// Reuse the previous seal's per-(shard, column, phase) deltas when
    /// recounting an epoch, so seal cost scales with the tuples added
    /// since the last seal instead of the whole store (byte-identical to
    /// a full recount; see `crate::shard`). Disable to force full
    /// recounts.
    pub incremental_seal: bool,
    /// Provenance store to record per-epoch stage timelines into
    /// (shard counting, merge, seal; owners of the pipeline add ingest,
    /// publish, and archive stages around it). `None` disables tracing.
    pub trace: Option<Arc<TraceStore>>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 4,
            epoch: EpochPolicy::default(),
            thresholds: Thresholds::default(),
            max_index: None,
            enforce_cond1: true,
            enforce_cond2: true,
            dedup: true,
            compact_history: false,
            incremental_seal: true,
            trace: None,
        }
    }
}

/// Push-driven streaming inference.
///
/// Feed events with [`push`](StreamPipeline::push) /
/// [`push_batch`](StreamPipeline::push_batch) or drain a whole
/// [`TupleSource`] with [`drive`](StreamPipeline::drive); epochs seal
/// automatically per the [`EpochPolicy`], and [`finish`](StreamPipeline::finish)
/// seals the trailing partial epoch and returns the [`StreamOutcome`].
#[derive(Debug)]
pub struct StreamPipeline {
    cfg: StreamConfig,
    shards: ShardSet,
    snapshots: Vec<Arc<EpochSnapshot>>,
    /// Classification as of the previous seal, indexed by interned id —
    /// the dense diff source for flip computation.
    prev_classes: Vec<Class>,
    /// `(asn, id)` pairs sorted by ASN, covering ids `< perm_len`;
    /// extended by merge whenever the shared interner grew.
    by_asn: Arc<Vec<(Asn, AsnId)>>,
    perm_len: usize,
    events_in_epoch: u64,
    total_events: u64,
    epoch_start_ts: Option<u64>,
    last_ts: u64,
    /// Seal-stage histograms by kind (`[zero_delta, incremental, full]`)
    /// plus the whole-recount histogram, resolved once from the global
    /// registry so sealing records with pure atomics.
    seal_hists: [Arc<Histogram>; 3],
    recount_hist: Arc<Histogram>,
    journal: Arc<Journal>,
}

impl StreamPipeline {
    /// New pipeline.
    pub fn new(cfg: StreamConfig) -> Self {
        let shards = ShardSet::new(cfg.shards, cfg.dedup, cfg.incremental_seal);
        let reg = obs::global();
        let seal_help = "Wall time of one epoch seal";
        let seal_hists = ["zero_delta", "incremental", "full"].map(|kind| {
            reg.histogram(
                "bgp_stream_seal_duration_seconds",
                seal_help,
                &[("kind", kind)],
            )
        });
        let recount_hist = reg.histogram(
            "bgp_stream_recount_duration_seconds",
            "Wall time of the whole recount of one sealed epoch",
            &[],
        );
        let journal = Arc::clone(reg.journal());
        if let Some(trace) = &cfg.trace {
            trace.set_active(0);
        }
        StreamPipeline {
            cfg,
            shards,
            snapshots: Vec::new(),
            prev_classes: Vec::new(),
            by_asn: Arc::new(Vec::new()),
            perm_len: 0,
            events_in_epoch: 0,
            total_events: 0,
            epoch_start_ts: None,
            last_ts: 0,
            seal_hists,
            recount_hist,
            journal,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Events ingested so far.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Unique tuples stored so far.
    pub fn stored_tuples(&self) -> usize {
        self.shards.stored_tuples()
    }

    /// Distinct ASNs in the workspace-shared interner (one id space for
    /// all shards — an AS spanning shards counts once).
    pub fn interned_asns(&self) -> usize {
        self.shards.interned_asns()
    }

    /// Total path positions held in the shard compiled-store id arenas.
    pub fn arena_hops(&self) -> usize {
        self.shards.arena_hops()
    }

    /// Dedup hits observed so far.
    pub fn duplicates(&self) -> u64 {
        self.shards.duplicates()
    }

    /// Stored-tuple count per shard so far (load-balance introspection).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.shard_loads()
    }

    /// `(replayed, total)` (shard, step) counting units of the last
    /// epoch recount — how much of the seal was served from cached step
    /// deltas (`(0, 0)` before any seal or after an O(1) re-seal).
    pub fn last_replay(&self) -> (usize, usize) {
        self.shards.last_replay()
    }

    /// Sealed snapshots so far. Snapshots are reference-counted so a
    /// serving layer can retain and publish them ([`Arc::clone`] is a
    /// pointer copy) while ingestion keeps running.
    pub fn snapshots(&self) -> &[Arc<EpochSnapshot>] {
        &self.snapshots
    }

    /// The latest sealed snapshot, if any epoch has sealed.
    pub fn latest(&self) -> Option<&Arc<EpochSnapshot>> {
        self.snapshots.last()
    }

    /// Live classification of one AS as of the latest sealed epoch
    /// ([`Class::NONE`] before the first seal).
    pub fn class_of(&self, asn: Asn) -> Class {
        self.latest().map_or(Class::NONE, |s| s.class_of(asn))
    }

    /// Ingest one event. Returns the snapshot sealed by this event, if
    /// the epoch policy tripped.
    pub fn push(&mut self, ev: StreamEvent) -> Option<&Arc<EpochSnapshot>> {
        self.epoch_start_ts.get_or_insert(ev.timestamp);
        self.last_ts = ev.timestamp;
        self.total_events += 1;
        self.events_in_epoch += 1;
        self.shards.push(ev.tuple);

        let span = self
            .last_ts
            .saturating_sub(self.epoch_start_ts.unwrap_or(self.last_ts));
        if self.cfg.epoch.should_seal(self.events_in_epoch, span) {
            Some(self.seal_epoch())
        } else {
            None
        }
    }

    /// Ingest a batch; returns how many epochs sealed.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = StreamEvent>) -> usize {
        let before = self.snapshots.len();
        for ev in events {
            self.push(ev);
        }
        self.snapshots.len() - before
    }

    /// Drain a source to exhaustion in `batch`-sized pulls. Returns how
    /// many epochs sealed. Errors stop ingestion at the failing record
    /// (everything already pushed stays counted).
    pub fn drive(
        &mut self,
        source: &mut dyn TupleSource,
        batch: usize,
    ) -> Result<usize, IngestError> {
        let before = self.snapshots.len();
        loop {
            let events = source.next_batch(batch.max(1))?;
            if events.is_empty() {
                break;
            }
            self.push_batch(events);
        }
        Ok(self.snapshots.len() - before)
    }

    /// Extend the Asn-sorted id permutation with any ids interned since
    /// the last seal (a sorted merge of the old table with the new tail).
    fn refresh_by_asn(&mut self) {
        let n = self.shards.interned_asns();
        if n == self.perm_len {
            return;
        }
        let interner = self.shards.interner();
        let mut fresh: Vec<(Asn, AsnId)> = interner
            .range(self.perm_len as AsnId, n as AsnId)
            .map(|(id, asn)| (asn, id))
            .collect();
        fresh.sort_unstable_by_key(|&(a, _)| a);
        if self.perm_len == 0 {
            self.by_asn = Arc::new(fresh);
        } else {
            let old = self.by_asn.as_slice();
            let mut merged = Vec::with_capacity(old.len() + fresh.len());
            let (mut i, mut j) = (0, 0);
            while i < old.len() || j < fresh.len() {
                match (old.get(i), fresh.get(j)) {
                    (Some(&a), Some(&b)) => {
                        if a.0 <= b.0 {
                            merged.push(a);
                            i += 1;
                        } else {
                            merged.push(b);
                            j += 1;
                        }
                    }
                    (Some(&a), None) => {
                        merged.push(a);
                        i += 1;
                    }
                    (None, Some(&b)) => {
                        merged.push(b);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            self.by_asn = Arc::new(merged);
        }
        self.perm_len = n;
    }

    /// Force-seal the running epoch: recount everything stored (phases
    /// shard-parallel, cached steps replayed where valid), classify over
    /// the dense columns, and diff against the previous snapshot by
    /// interned id. When nothing was stored since the previous seal the
    /// new snapshot shares its predecessor's dense state wholesale —
    /// an O(1) re-seal. Idempotent on an empty epoch only in the sense
    /// that it still produces a (possibly flip-free) snapshot.
    pub fn seal_epoch(&mut self) -> &Arc<EpochSnapshot> {
        let t_seal = Instant::now();
        let epoch = self.snapshots.len() as u64;
        let zero_delta = self.shards.unchanged_since_seal();
        let mut snapshot = if zero_delta {
            // O(1) fast path: identical tuple set => identical counters,
            // classes, and (empty) flip set. Share every component.
            self.shards.clear_replay_stats();
            let prev = self.snapshots.last().expect("unchanged implies a seal");
            EpochSnapshot::assemble(
                epoch,
                self.last_ts,
                self.events_in_epoch,
                self.total_events,
                self.shards.stored_tuples(),
                prev.dense
                    .clone()
                    .expect("latest snapshot is never compacted"),
                Arc::clone(&prev.classes),
                Arc::new(Vec::new()),
            )
        } else {
            let t_count = Instant::now();
            let (counters, deepest_active_index) = self.shards.recount(
                &self.cfg.thresholds,
                self.cfg.max_index,
                self.cfg.enforce_cond1,
                self.cfg.enforce_cond2,
                self.cfg.shards > 1,
            );
            let count_nanos = t_count.elapsed().as_nanos() as u64;
            self.recount_hist.record(count_nanos);
            self.refresh_by_asn();
            let counters = Arc::new(counters.into_counts());
            let th = self.cfg.thresholds;
            self.prev_classes.resize(self.perm_len, Class::NONE);
            let mut classes = Vec::new();
            let mut flips = Vec::new();
            for &(asn, id) in self.by_asn.iter() {
                let c = counters[id as usize];
                if c.is_zero() {
                    continue;
                }
                let class = c.classify(&th);
                let prev = self.prev_classes[id as usize];
                if prev != class {
                    flips.push(ClassFlip {
                        asn,
                        from: prev,
                        to: class,
                    });
                    self.prev_classes[id as usize] = class;
                }
                classes.push((asn, class));
            }
            let dense = DenseOutcome {
                interner: Arc::clone(self.shards.interner()),
                counters,
                by_asn: Arc::clone(&self.by_asn),
                thresholds: th,
                deepest_active_index,
            };
            let mut snap = EpochSnapshot::assemble(
                epoch,
                self.last_ts,
                self.events_in_epoch,
                self.total_events,
                self.shards.stored_tuples(),
                dense,
                Arc::new(classes),
                Arc::new(flips),
            );
            snap.count_nanos = count_nanos;
            snap
        };
        self.events_in_epoch = 0;
        self.epoch_start_ts = None;
        if self.cfg.compact_history {
            if let Some(prev) = self.snapshots.last_mut() {
                // A shared snapshot (e.g. one a serving layer still
                // publishes) is cloned before stripping, so external
                // holders keep their full counter state; only the
                // pipeline's history copy is compacted.
                Arc::make_mut(prev).compact();
            }
        }
        snapshot.seal_nanos = t_seal.elapsed().as_nanos() as u64;
        let (replayed, total) = self.shards.last_replay();
        let kind = if zero_delta {
            "zero_delta"
        } else if replayed > 0 {
            "incremental"
        } else {
            "full"
        };
        let kind_idx = match kind {
            "zero_delta" => 0,
            "incremental" => 1,
            _ => 2,
        };
        self.seal_hists[kind_idx].record(snapshot.seal_nanos);
        self.journal.push(
            JournalKind::Span,
            "seal",
            snapshot.seal_nanos,
            format!(
                "epoch={epoch} kind={kind} events={} tuples={} replayed={replayed}/{total} count_nanos={}",
                snapshot.events, snapshot.unique_tuples, snapshot.count_nanos
            ),
        );
        obs::debug!(
            "stream",
            "sealed epoch {epoch} kind={kind} events={} tuples={} flips={} seal_nanos={} count_nanos={}",
            snapshot.events,
            snapshot.unique_tuples,
            snapshot.flips.len(),
            snapshot.seal_nanos,
            snapshot.count_nanos
        );
        if let Some(trace) = &self.cfg.trace {
            if !zero_delta {
                trace.record(
                    epoch,
                    "shard_count",
                    self.shards.last_count_nanos(),
                    &[("steps", total as u64)],
                );
                trace.record(epoch, "shard_merge", self.shards.last_merge_nanos(), &[]);
            }
            // `kind` as a counter: 0 = zero_delta, 1 = incremental,
            // 2 = full — the journal's seal span carries the word form.
            trace.record(
                epoch,
                "seal",
                snapshot.seal_nanos,
                &[
                    ("events", snapshot.events),
                    ("tuples", snapshot.unique_tuples as u64),
                    ("replayed", replayed as u64),
                    ("total_steps", total as u64),
                    ("kind", kind_idx as u64),
                ],
            );
            // Later batches belong to the next epoch's timeline.
            trace.set_active(epoch + 1);
        }
        self.snapshots.push(Arc::new(snapshot));
        self.snapshots.last().expect("just pushed")
    }

    /// Seal any trailing partial epoch and return the final outcome.
    pub fn finish(mut self) -> StreamOutcome {
        if self.events_in_epoch > 0 || self.snapshots.is_empty() {
            self.seal_epoch();
        }
        let last = self.snapshots.last().expect("finish always seals once");
        StreamOutcome {
            outcome: last
                .outcome()
                .cloned()
                .expect("latest snapshot is never compacted"),
            total_events: self.total_events,
            unique_tuples: self.shards.stored_tuples(),
            duplicates: self.shards.duplicates(),
            shard_loads: self.shards.shard_loads(),
            snapshots: self.snapshots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::StreamEvent;
    use bgp_infer::classify::TaggingClass;

    fn tag_tuple(p: &[u32], uppers: &[u32]) -> PathCommTuple {
        PathCommTuple::new(
            path(p),
            CommunitySet::from_iter(uppers.iter().map(|&u| AnyCommunity::tag_for(Asn(u), 100))),
        )
    }

    #[test]
    fn epochs_seal_by_event_count() {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(5),
            ..Default::default()
        });
        for i in 0..12u64 {
            pipe.push(StreamEvent::new(i, tag_tuple(&[1, 9], &[1])));
        }
        assert_eq!(pipe.snapshots().len(), 2);
        let out = pipe.finish(); // trailing 2 events seal a third epoch
        assert_eq!(out.snapshots.len(), 3);
        assert_eq!(out.snapshots[0].version, 1);
        assert_eq!(out.snapshots[2].version, 3);
        assert_eq!(out.total_events, 12);
    }

    #[test]
    fn epochs_seal_by_time_span() {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 1,
            epoch: EpochPolicy::every_span(100),
            ..Default::default()
        });
        assert!(pipe
            .push(StreamEvent::new(1_000, tag_tuple(&[1, 9], &[1])))
            .is_none());
        assert!(pipe
            .push(StreamEvent::new(1_050, tag_tuple(&[2, 9], &[])))
            .is_none());
        let sealed = pipe.push(StreamEvent::new(1_100, tag_tuple(&[1, 8], &[1])));
        assert!(sealed.is_some());
        assert_eq!(sealed.unwrap().sealed_at, 1_100);
    }

    #[test]
    fn live_class_updates_between_epochs() {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(1),
            ..Default::default()
        });
        assert_eq!(pipe.class_of(Asn(1)), Class::NONE);
        pipe.push(StreamEvent::new(0, tag_tuple(&[1, 9], &[1])));
        assert_eq!(pipe.class_of(Asn(1)).tagging, TaggingClass::Tagger);
        // A contradicting observation flips 1 to undecided next epoch.
        pipe.push(StreamEvent::new(1, tag_tuple(&[1, 8], &[])));
        assert_eq!(pipe.class_of(Asn(1)).tagging, TaggingClass::Undecided);
        let flips = &pipe.latest().unwrap().flips;
        assert!(flips.iter().any(|f| f.asn == Asn(1)));
    }

    #[test]
    fn dedup_reseal_shares_the_previous_snapshot() {
        // Epoch 2 ingests only duplicates: the seal must take the O(1)
        // fast path, sharing the dense state and classes by pointer.
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(2),
            dedup: true,
            ..Default::default()
        });
        pipe.push(StreamEvent::new(0, tag_tuple(&[1, 9], &[1])));
        pipe.push(StreamEvent::new(1, tag_tuple(&[2, 9], &[])));
        let first = Arc::clone(pipe.latest().unwrap());
        pipe.push(StreamEvent::new(2, tag_tuple(&[1, 9], &[1])));
        pipe.push(StreamEvent::new(3, tag_tuple(&[2, 9], &[])));
        let second = Arc::clone(pipe.latest().unwrap());
        assert_eq!(second.epoch, 1);
        assert!(second.flips.is_empty());
        assert!(Arc::ptr_eq(&first.classes, &second.classes));
        assert!(Arc::ptr_eq(
            &first.dense.as_ref().unwrap().counters,
            &second.dense.as_ref().unwrap().counters
        ));
        assert_eq!(second.count_nanos, 0, "no recount ran");
        // And the duplicate events are still accounted for.
        assert_eq!(second.total_events, 4);
        assert_eq!(second.events, 2);
    }

    #[test]
    fn compact_history_keeps_only_latest_outcome() {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 1,
            epoch: EpochPolicy::every_events(2),
            compact_history: true,
            ..Default::default()
        });
        for i in 0..6u64 {
            pipe.push(StreamEvent::new(i, tag_tuple(&[1, 9], &[1])));
        }
        let out = pipe.finish();
        assert_eq!(out.snapshots.len(), 3);
        assert!(out.snapshots[..2].iter().all(|s| s.outcome().is_none()));
        assert!(out.snapshots.last().unwrap().outcome().is_some());
        // Compacted epochs still answer class queries and keep flips;
        // only their counter-store exports are gone.
        assert_eq!(out.snapshots[0].class_of(Asn(1)).tagging.code(), 't');
        assert!(!out.snapshots[0].flips.is_empty());
        assert!(out.export_epoch_db(0).is_none());
        assert!(out.export_epoch_db(2).is_some());
    }

    #[test]
    fn empty_stream_finishes_clean() {
        let out = StreamPipeline::new(StreamConfig::default()).finish();
        assert_eq!(out.total_events, 0);
        assert_eq!(out.snapshots.len(), 1);
        assert!(out.outcome.counters.is_empty());
    }

    #[test]
    fn seal_timings_are_recorded() {
        let mut pipe = StreamPipeline::new(StreamConfig {
            shards: 1,
            epoch: EpochPolicy::manual(),
            ..Default::default()
        });
        for i in 0..50u64 {
            pipe.push(StreamEvent::new(
                i,
                tag_tuple(&[2 + (i % 5) as u32, 9], &[2 + (i % 5) as u32]),
            ));
        }
        let snap = pipe.seal_epoch();
        assert!(snap.seal_nanos > 0);
        assert!(snap.seal_nanos >= snap.count_nanos);
    }
}
