//! Shard layer: partitioned tuple ownership, dense parallel phase
//! counting over one shared id space, and incremental epoch recounts.
//!
//! Incoming tuples are routed onto `N` shards by an FNV-1a hash of their
//! on-path ASNs, so an identical tuple always lands on the same shard —
//! which makes per-shard deduplication equivalent to global deduplication.
//! Each shard owns its partition as a [`CompiledTuples`] store (the
//! length-bucketed columnar representation of `bgp_infer::compiled`,
//! appended incrementally as events arrive), and **every shard interns
//! through one workspace-level [`SharedInterner`]**: all shards speak the
//! same dense `u32` id space, so a counting phase hands the coordinator a
//! [`DeltaStore`] (flat counters + touched-id bitmap) that folds into
//! the epoch's [`DenseCounterStore`] by slice addition — the old
//! `HashMap<Asn, AsCounters>` hop between shard and coordinator is gone
//! end to end. The coordinator maintains the phase predicate bitsets
//! incrementally per touched AS at each merge; shards evaluate Cond1 and
//! Cond2 word-parallel against them (see `bgp_infer::compiled`).
//!
//! ## Incremental recounts
//!
//! A full recount replays the batch engine's column loop (tagging phase,
//! merge, forwarding phase, merge, next column) over everything stored.
//! Because counters only ever *accumulate*, the per-shard delta of one
//! (column, phase) step is a pure function of (a) the shard's tuples with
//! `len >= column` and (b) the predicate bits of the ASes occurring in
//! the shard. The shard set exploits that to make seal cost scale with
//! the delta instead of the store:
//!
//! * each shard's buckets are append-only, so the tuples added since the
//!   previous seal are a *suffix* of each bucket (the dirty range);
//! * every (shard, column, phase) step's sparse delta from the previous
//!   seal is cached, along with the *predicate trajectory* — the
//!   `is_forward`/`is_tagger` bit words entering each step (two tiny
//!   bitsets per step);
//! * at the next seal, a step's entering predicates are XOR-diffed
//!   against the recorded trajectory (counters keep growing every seal,
//!   but predicates only move when a share crosses a threshold, so the
//!   diff is almost always empty). A shard replays its cached delta iff
//!   no diverged predicate bit belongs to an AS present in the shard; it
//!   then counts only its dirty suffix fresh and folds that into the
//!   cache. Otherwise it recounts the step in full.
//!
//! Replayed steps are byte-identical to recounting by the purity argument
//! above — the cached delta was computed under bit-identical predicate
//! inputs over an identical tuple prefix — so the merged result is
//! identical for every shard count and cache state, and identical to the
//! batch engine's reference path, pinned by `tests/stream_parity.rs`
//! across epochs, shard counts, and incremental on/off.

use bgp_infer::compiled::{
    CompiledTuples, DeltaStore, DenseCounterStore, IdBitSet, PhasePredicates,
};
use bgp_infer::counters::{AsCounters, Thresholds};
use bgp_infer::engine::CountPhase;
use bgp_types::prelude::*;
use obs::Histogram;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The predicate bit words entering one (column, phase) step at the
/// previous seal — the incremental-recount validity reference.
#[derive(Debug, Clone, Default)]
struct StepTrajectory {
    forward: Vec<u64>,
    tagger: Vec<u64>,
}

impl StepTrajectory {
    /// Record `preds` as this step's entering state.
    fn record(&mut self, preds: &PhasePredicates) {
        self.forward.clear();
        self.forward.extend_from_slice(preds.forward_words());
        self.tagger.clear();
        self.tagger.extend_from_slice(preds.tagger_words());
    }
}

/// One cached (column, phase) delta: the sparse contribution of a
/// shard's clean-prefix tuples as of the previous seal, sorted by id.
#[derive(Debug, Clone, Default)]
struct CachedStep {
    entries: Vec<(AsnId, AsCounters)>,
}

impl CachedStep {
    /// Replace the cache with a fresh step delta, reusing the allocation.
    /// (`DeltaStore::iter` enumerates ascending by id.)
    fn refill(&mut self, delta: &DeltaStore) {
        self.entries.clear();
        self.entries.extend(delta.iter());
    }

    /// Fold a fresh dirty-suffix delta into the cache (the suffix becomes
    /// part of the clean prefix at the next seal).
    fn absorb(&mut self, delta: &DeltaStore) {
        if delta.is_empty() {
            return;
        }
        let add: Vec<(AsnId, AsCounters)> = delta.iter().collect();
        let mut merged = Vec::with_capacity(self.entries.len() + add.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < add.len() {
            match (self.entries.get(i), add.get(j)) {
                (Some(&(ia, ca)), Some(&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        i += 1;
                    } else if ib < ia {
                        merged.push((ib, cb));
                        j += 1;
                    } else {
                        let mut c = ca;
                        c.accumulate(&cb);
                        merged.push((ia, c));
                        i += 1;
                        j += 1;
                    }
                }
                (Some(&(ia, ca)), None) => {
                    merged.push((ia, ca));
                    i += 1;
                }
                (None, Some(&(ib, cb))) => {
                    merged.push((ib, cb));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.entries = merged;
    }
}

/// One worker shard: a privately owned, incrementally compiled tuple
/// partition plus its per-seal scratch and the cached step deltas. With
/// dedup on, the ordered `seen` set provides membership (counting order
/// is irrelevant — phases are order-free); the compiled store holds
/// every stored tuple either way.
#[derive(Debug)]
struct Shard {
    seen: BTreeSet<PathCommTuple>,
    compiled: CompiledTuples,
    /// Reused per-phase dense delta (touched-id tracked, O(touched) to
    /// clear).
    delta: DeltaStore,
    /// `cache[x-1][phase]` — previous seal's step deltas.
    cache: Vec<[CachedStep; 2]>,
}

impl Shard {
    fn new(interner: Arc<SharedInterner>) -> Self {
        Shard {
            seen: BTreeSet::new(),
            compiled: CompiledTuples::with_shared(interner),
            delta: DeltaStore::default(),
            cache: Vec::new(),
        }
    }

    fn push(&mut self, t: PathCommTuple, dedup: bool) -> bool {
        if dedup {
            if self.seen.contains(&t) {
                return false;
            }
            self.compiled.push(&t);
            self.seen.insert(t);
        } else {
            self.compiled.push(&t);
        }
        true
    }

    fn len(&self) -> usize {
        self.compiled.len()
    }
}

/// Stable tuple→shard routing: FNV-1a over the on-path ASNs.
fn route_hash(path: &AsPath) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for asn in path.asns() {
        for b in asn.0.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// `N` shards plus the coordinator-side counting entry points.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<Shard>,
    interner: Arc<SharedInterner>,
    dedup: bool,
    incremental: bool,
    unique: usize,
    duplicates: u64,
    /// Columns covered by the step caches of the previous seal.
    prev_deepest: usize,
    sealed_once: bool,
    /// `trajectory[x-1][phase]` — predicate words entering each step at
    /// the previous seal.
    trajectory: Vec<[StepTrajectory; 2]>,
    /// `(replayed, total)` (shard, step) counting units of the last
    /// recount — incremental-seal observability.
    last_replay: (usize, usize),
    /// Per-phase stage histograms (`[tagging, forwarding]`), resolved
    /// once from the global registry so the recount loop records with
    /// pure atomics: one observation per (shard, column, phase) count
    /// and one per (column, phase) merge.
    hist_count: [Arc<Histogram>; 2],
    hist_merge: [Arc<Histogram>; 2],
    /// Counting / serial-merge nanoseconds accumulated by the last
    /// recount, summed across shards and steps — the provenance-trace
    /// inputs mirroring the per-step histograms. Atomic because the
    /// count side accumulates from scoped worker threads.
    count_nanos: AtomicU64,
    merge_nanos: AtomicU64,
}

impl ShardSet {
    /// `n` empty shards (`n >= 1`) sharing one fresh interner. With
    /// `dedup`, repeated identical tuples are counted once, as the
    /// paper's `TupleSet` pipeline does. With `incremental`, epoch
    /// recounts reuse the previous seal's step deltas where valid.
    pub fn new(n: usize, dedup: bool, incremental: bool) -> Self {
        let n = n.max(1);
        let interner = Arc::new(SharedInterner::new());
        let reg = obs::global();
        let phase_hist = |family: &str, help: &str| {
            [
                reg.histogram(family, help, &[("phase", "tagging")]),
                reg.histogram(family, help, &[("phase", "forwarding")]),
            ]
        };
        let hist_count = phase_hist(
            "bgp_stream_count_duration_seconds",
            "Wall time of one shard's count of one (column, phase) step",
        );
        let hist_merge = phase_hist(
            "bgp_stream_merge_duration_seconds",
            "Wall time of the serial dense merge of one (column, phase) step",
        );
        ShardSet {
            shards: (0..n).map(|_| Shard::new(Arc::clone(&interner))).collect(),
            interner,
            dedup,
            incremental,
            unique: 0,
            duplicates: 0,
            prev_deepest: 0,
            sealed_once: false,
            trajectory: Vec::new(),
            last_replay: (0, 0),
            hist_count,
            hist_merge,
            count_nanos: AtomicU64::new(0),
            merge_nanos: AtomicU64::new(0),
        }
    }

    /// `(replayed, total)` (shard, step) units of the last recount — how
    /// much of the seal was served from cached step deltas.
    pub fn last_replay(&self) -> (usize, usize) {
        self.last_replay
    }

    /// Reset the replay stats (the pipeline's O(1) re-seal fast path
    /// skips the recount entirely, so no counting units ran).
    pub(crate) fn clear_replay_stats(&mut self) {
        self.last_replay = (0, 0);
        self.count_nanos.store(0, Ordering::Relaxed);
        self.merge_nanos.store(0, Ordering::Relaxed);
    }

    /// Shard-counting nanoseconds of the last recount, summed across
    /// shards and (column, phase) steps — CPU time, not wall time, when
    /// shards count in parallel.
    pub fn last_count_nanos(&self) -> u64 {
        self.count_nanos.load(Ordering::Relaxed)
    }

    /// Serial dense-merge nanoseconds of the last recount, summed
    /// across (column, phase) steps.
    pub fn last_merge_nanos(&self) -> u64 {
        self.merge_nanos.load(Ordering::Relaxed)
    }

    /// The workspace-shared interner all shards intern through.
    pub fn interner(&self) -> &Arc<SharedInterner> {
        &self.interner
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a tuple routes to.
    pub fn route(&self, path: &AsPath) -> usize {
        (route_hash(path) % self.shards.len() as u64) as usize
    }

    /// Offer a tuple; returns `true` when stored (not a dedup hit).
    pub fn push(&mut self, t: PathCommTuple) -> bool {
        let idx = self.route(&t.path);
        let stored = self.shards[idx].push(t, self.dedup);
        if stored {
            self.unique += 1;
        } else {
            self.duplicates += 1;
        }
        stored
    }

    /// Tuples stored across all shards.
    pub fn stored_tuples(&self) -> usize {
        self.unique
    }

    /// Dedup hits observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Longest path currently stored.
    pub fn max_path_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.compiled.max_path_len())
            .max()
            .unwrap_or(0)
    }

    /// Per-shard stored-tuple counts (load-balance introspection).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Distinct ASNs in the shared id space (exact — shards share one
    /// interner, an AS spanning shards counts once).
    pub fn interned_asns(&self) -> usize {
        self.interner.len()
    }

    /// Total path positions held in the shard id arenas.
    pub fn arena_hops(&self) -> usize {
        self.shards.iter().map(|s| s.compiled.arena_len()).sum()
    }

    /// Tuples stored since the previous seal.
    pub fn dirty_tuples(&self) -> usize {
        self.shards.iter().map(|s| s.compiled.dirty_tuples()).sum()
    }

    /// Whether a recount right now would reproduce the previous seal's
    /// counters exactly (at least one seal happened and nothing was
    /// stored since) — the pipeline's O(1) re-seal fast path.
    pub fn unchanged_since_seal(&self) -> bool {
        self.sealed_once && self.dirty_tuples() == 0
    }

    /// Full recount over everything currently stored: the exact column
    /// loop of the batch engine (tagging phase, merge, forwarding phase,
    /// merge, next column), phases counted shard-parallel, with
    /// cached-step reuse where the incremental invariants hold. Returns
    /// the final dense counters over the shared id space and the deepest
    /// column where anything counted.
    pub fn recount(
        &mut self,
        th: &Thresholds,
        max_index: Option<usize>,
        enforce_cond1: bool,
        enforce_cond2: bool,
        parallel: bool,
    ) -> (DenseCounterStore, usize) {
        let n_ids = self.interner.len();
        let max_len = self.max_path_len();
        let deepest = max_index.unwrap_or(max_len).min(max_len);
        let mut counters = DenseCounterStore::zeroed(n_ids);
        let mut preds = PhasePredicates::empty(n_ids);
        let mut diff_scratch: Vec<u64> = vec![0; n_ids.div_ceil(64)];
        for s in &mut self.shards {
            s.compiled.prepare();
            s.delta.resize(n_ids);
            if self.incremental && s.cache.len() < deepest {
                s.cache.resize(deepest, Default::default());
            }
        }
        if self.incremental && self.trajectory.len() < deepest {
            self.trajectory.resize(deepest, Default::default());
        }
        // Replay requires caches + a trajectory from a previous seal;
        // storing starts on the first seal so the second can replay. In
        // trajectory mode, predicates are bulk-loaded from the recorded
        // per-step words and corrected only at the *overlay* — the ids
        // whose counters actually moved this seal (suffix contributions
        // and fresh recounts) — so a replayed step costs accumulate-only
        // merges plus O(overlay) float work instead of O(touched ids).
        let mut direct_mode = !(self.incremental && self.sealed_once);
        let mut overlay: Vec<AsnId> = Vec::new();
        let mut overlay_set = IdBitSet::with_capacity(n_ids);
        let grow_overlay = |overlay: &mut Vec<AsnId>, overlay_set: &mut IdBitSet, id: AsnId| {
            if !overlay_set.get(id) {
                overlay_set.ensure(id as usize + 1);
                overlay_set.set(id);
                overlay.push(id);
            }
        };
        // Same small-work guard as the batch engine's fan-out: below
        // this, spawn+join costs more than the counting itself (hit hard
        // by fine-grained epoch policies like every_events(1)).
        let parallel = parallel && self.shards.len() > 1 && self.unique >= 1_024;
        let mut deepest_active = 0;
        let mut reuse = vec![false; self.shards.len()];
        let mut clean_full = vec![false; self.shards.len()];
        self.last_replay = (0, 0);
        self.count_nanos.store(0, Ordering::Relaxed);
        self.merge_nanos.store(0, Ordering::Relaxed);
        for x in 1..=deepest {
            let mut col_active = false;
            for phase in [CountPhase::Tagging, CountPhase::Forwarding] {
                let pi = (phase == CountPhase::Forwarding) as usize;
                if !direct_mode && x > self.prev_deepest {
                    // Ran past the recorded trajectory (longer paths
                    // arrived): reconstruct full predicates from the
                    // actual counters and maintain them directly from
                    // here on.
                    preds.snapshot_from(&counters, th);
                    direct_mode = true;
                }
                if !direct_mode {
                    // Entering state = recorded trajectory, patched at
                    // the overlay; the patch also yields the divergence
                    // mask the replay decisions need. Ids outside the
                    // overlay had every contribution replayed, so their
                    // bits match the trajectory by construction.
                    let traj = &self.trajectory[x - 1][pi];
                    preds.load_words(&traj.forward, &traj.tagger, n_ids);
                    diff_scratch.fill(0);
                    diff_scratch.resize(n_ids.div_ceil(64), 0);
                    for &id in &overlay {
                        if preds.refresh_both(id, counters.get(id), th) {
                            diff_scratch[(id / 64) as usize] |= 1u64 << (id % 64);
                        }
                    }
                    for (r, s) in reuse.iter_mut().zip(&self.shards) {
                        // Tested against the ids the *clean prefix* can
                        // contain: predicates of ids interned after the
                        // previous seal may move freely (they cannot
                        // occur in older tuples).
                        *r = !s
                            .compiled
                            .clean_present_ids()
                            .intersects_words(&diff_scratch);
                    }
                } else {
                    reuse.fill(false);
                }
                // Record this step's entering predicates as the new
                // trajectory for the next seal.
                if self.incremental {
                    self.trajectory[x - 1][pi].record(&preds);
                }
                self.last_replay.0 += reuse.iter().filter(|&&r| r).count();
                self.last_replay.1 += reuse.len();
                // Counting: each shard fills its private delta — only the
                // dirty suffix when its cached step will be replayed.
                // The Cond1 `clean` words are computed at the tagging
                // phase (they serve both) and only over the dirty
                // suffix when that phase replays; a forwarding phase
                // that stops replaying recomputes them in full.
                let preds_ref = &preds;
                let count_hist = &self.hist_count[pi];
                let count_acc = &self.count_nanos;
                let count_one = |s: &mut Shard, replay: bool, clean_full: &mut bool| {
                    let t_count = Instant::now();
                    if phase == CountPhase::Tagging {
                        s.compiled
                            .compute_clean(preds_ref, x, enforce_cond1, replay);
                        *clean_full = !replay;
                    } else if !replay && !*clean_full {
                        s.compiled.compute_clean(preds_ref, x, enforce_cond1, false);
                        *clean_full = true;
                    }
                    s.compiled.count_phase_dense(
                        preds_ref,
                        x,
                        phase,
                        enforce_cond2,
                        replay,
                        &mut s.delta,
                    );
                    let nanos = t_count.elapsed().as_nanos() as u64;
                    count_hist.record(nanos);
                    count_acc.fetch_add(nanos, Ordering::Relaxed);
                };
                if parallel {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = self
                            .shards
                            .iter_mut()
                            .zip(reuse.iter().zip(clean_full.iter_mut()))
                            .map(|(s, (&replay, cf))| scope.spawn(move || count_one(s, replay, cf)))
                            .collect();
                        for h in handles {
                            h.join().expect("shard counting worker panicked");
                        }
                    });
                } else {
                    for (s, (&replay, cf)) in self
                        .shards
                        .iter_mut()
                        .zip(reuse.iter().zip(clean_full.iter_mut()))
                    {
                        count_one(s, replay, cf);
                    }
                }
                // Serial merge in shard order. In trajectory mode the
                // merges are accumulate-only — the predicate evolution is
                // already known — and every id whose counters moved off
                // the replayed trajectory joins the overlay.
                let t_merge = Instant::now();
                for (s, &replay) in self.shards.iter_mut().zip(&reuse) {
                    if replay {
                        let step = &s.cache[x - 1][pi];
                        if !step.entries.is_empty() {
                            col_active = true;
                        }
                        counters.merge_sparse_counts(&step.entries);
                        if !s.delta.is_empty() {
                            // Fold the freshly counted dirty suffix into
                            // the cache — it is clean-prefix material at
                            // the next seal.
                            col_active = true;
                            counters.merge_counts(&s.delta);
                            for id in s.delta.touched() {
                                grow_overlay(&mut overlay, &mut overlay_set, id);
                            }
                            s.cache[x - 1][pi].absorb(&s.delta);
                        }
                    } else if direct_mode {
                        if !s.delta.is_empty() {
                            col_active = true;
                        }
                        counters.merge_update(&s.delta, &mut preds, th, phase);
                        if self.incremental {
                            s.cache[x - 1][pi].refill(&s.delta);
                        }
                    } else {
                        // Trajectory mode, fresh recount of this shard's
                        // step: both the old cached contribution and the
                        // fresh one leave the replayed trajectory.
                        if !s.delta.is_empty() {
                            col_active = true;
                        }
                        for &(id, _) in &s.cache[x - 1][pi].entries {
                            grow_overlay(&mut overlay, &mut overlay_set, id);
                        }
                        counters.merge_counts(&s.delta);
                        for id in s.delta.touched() {
                            grow_overlay(&mut overlay, &mut overlay_set, id);
                        }
                        s.cache[x - 1][pi].refill(&s.delta);
                    }
                    s.delta.clear();
                }
                let merge_elapsed = t_merge.elapsed().as_nanos() as u64;
                self.hist_merge[pi].record(merge_elapsed);
                self.merge_nanos.fetch_add(merge_elapsed, Ordering::Relaxed);
            }
            if col_active {
                deepest_active = x;
            }
        }
        for s in &mut self.shards {
            s.compiled.commit_clean();
        }
        self.prev_deepest = deepest;
        self.sealed_once = true;
        (counters, deepest_active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_infer::counters::CounterStore;
    use bgp_infer::engine::{InferenceConfig, InferenceEngine};

    fn tup(p: &[u32], uppers: &[u32]) -> PathCommTuple {
        PathCommTuple::new(
            path(p),
            CommunitySet::from_iter(uppers.iter().map(|&u| AnyCommunity::tag_for(Asn(u), 100))),
        )
    }

    fn corpus() -> Vec<PathCommTuple> {
        let mut v = Vec::new();
        for i in 0..500u32 {
            let peer = 10 + (i % 7);
            v.push(tup(
                &[peer, 100 + (i % 40), 10_000 + i],
                &[peer, 100 + (i % 40)],
            ));
        }
        v
    }

    fn sparse(set: &ShardSet, counters: &DenseCounterStore) -> CounterStore {
        let mut store = CounterStore::new();
        for (id, c) in counters.counts().iter().enumerate() {
            if !c.is_zero() {
                *store.entry(set.interner().resolve(id as AsnId)) = *c;
            }
        }
        store
    }

    #[test]
    fn routing_is_stable_and_total() {
        let set = ShardSet::new(4, true, true);
        for t in corpus() {
            let a = set.route(&t.path);
            let b = set.route(&t.path);
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn dedup_is_global_across_shards() {
        let mut set = ShardSet::new(4, true, true);
        for t in corpus() {
            set.push(t);
        }
        let unique = set.stored_tuples();
        for t in corpus() {
            assert!(!set.push(t), "duplicate accepted");
        }
        assert_eq!(set.stored_tuples(), unique);
        assert_eq!(set.duplicates(), unique as u64);
    }

    #[test]
    fn recount_matches_batch_engine_any_shard_count() {
        let tuples = corpus();
        let batch = InferenceEngine::new(InferenceConfig {
            threads: 1,
            ..Default::default()
        })
        .run(&tuples);
        for shards in [1usize, 2, 4, 7] {
            for incremental in [false, true] {
                let mut set = ShardSet::new(shards, false, incremental);
                for t in tuples.clone() {
                    set.push(t);
                }
                let (counters, deepest) =
                    set.recount(&batch.thresholds, None, true, true, shards > 1);
                assert_eq!(deepest, batch.deepest_active_index, "{shards} shards");
                let mut got: Vec<(Asn, AsCounters)> = sparse(&set, &counters).iter().collect();
                let mut want: Vec<(Asn, AsCounters)> = batch.counters.iter().collect();
                got.sort_by_key(|&(a, _)| a);
                want.sort_by_key(|&(a, _)| a);
                assert_eq!(got, want, "{shards} shards diverged from batch");
            }
        }
    }

    #[test]
    fn incremental_reseal_matches_full_recount() {
        // Seal, add tuples, seal again (replayed steps + dirty suffixes),
        // and compare against a from-scratch shard set over the union.
        let tuples = corpus();
        let th = Thresholds::default();
        let (first, rest) = tuples.split_at(300);

        let mut warm = ShardSet::new(3, false, true);
        for t in first.iter().cloned() {
            warm.push(t);
        }
        warm.recount(&th, None, true, true, false);
        for t in rest.iter().cloned() {
            warm.push(t);
        }
        let (inc, inc_deepest) = warm.recount(&th, None, true, true, false);

        let mut cold = ShardSet::new(3, false, false);
        for t in tuples.iter().cloned() {
            cold.push(t);
        }
        let (full, full_deepest) = cold.recount(&th, None, true, true, false);

        assert_eq!(inc_deepest, full_deepest);
        let mut got: Vec<(Asn, AsCounters)> = sparse(&warm, &inc).iter().collect();
        let mut want: Vec<(Asn, AsCounters)> = sparse(&cold, &full).iter().collect();
        got.sort_by_key(|&(a, _)| a);
        want.sort_by_key(|&(a, _)| a);
        assert_eq!(got, want, "incremental reseal diverged");
    }

    #[test]
    fn unchanged_reseal_is_detected_and_stable() {
        let mut set = ShardSet::new(2, true, true);
        for t in corpus() {
            set.push(t);
        }
        assert!(!set.unchanged_since_seal(), "never sealed yet");
        let th = Thresholds::default();
        let (a, da) = set.recount(&th, None, true, true, false);
        assert!(set.unchanged_since_seal());
        // A recount with zero dirty tuples replays every step.
        let (b, db) = set.recount(&th, None, true, true, false);
        assert_eq!(da, db);
        assert_eq!(a.counts(), b.counts());
        // A dedup hit adds no tuple, so the set stays unchanged.
        set.push(corpus().remove(0));
        assert!(set.unchanged_since_seal());
    }

    #[test]
    fn load_spreads_across_shards() {
        let mut set = ShardSet::new(4, true, true);
        for t in corpus() {
            set.push(t);
        }
        let loads = set.shard_loads();
        assert_eq!(loads.len(), 4);
        assert!(
            loads.iter().all(|&l| l > 0),
            "a shard got nothing: {loads:?}"
        );
        // One shared id space: far fewer interned ids than arena hops.
        assert!(set.interned_asns() <= set.arena_hops());
    }
}
