//! Shard layer: partitioned tuple ownership and parallel phase counting.
//!
//! Incoming tuples are routed onto `N` shards by an FNV-1a hash of their
//! on-path ASNs, so an identical tuple always lands on the same shard —
//! which makes per-shard deduplication equivalent to global deduplication.
//! Each shard owns its partition as a [`CompiledTuples`] store (the
//! columnar interned representation of `bgp_infer::compiled`, appended
//! incrementally as events arrive); during a counting phase every shard
//! densifies the shared read-only counter snapshot over its private id
//! space, evaluates the phase predicate bitsets once, counts its columns,
//! and hands a sparse `HashMap<Asn, AsCounters>` delta back to the
//! coordinator, which folds the deltas in with [`CounterStore::merge`].
//! Addition commutes, and the phase conditions only read the snapshot, so
//! the merged result is identical for every shard count — and identical
//! to the batch engine's reference path, pinned by
//! `tests/stream_parity.rs` across epochs.

use bgp_infer::compiled::CompiledTuples;
use bgp_infer::counters::{merge_delta_map, AsCounters, CounterStore, Thresholds};
use bgp_infer::engine::CountPhase;
use bgp_types::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// One worker shard: a privately owned, incrementally compiled tuple
/// partition. With dedup on, the ordered `seen` set provides membership
/// (counting order is irrelevant — phases are order-free); the compiled
/// store holds every stored tuple either way.
#[derive(Debug, Default)]
struct Shard {
    seen: BTreeSet<PathCommTuple>,
    compiled: CompiledTuples,
}

impl Shard {
    fn push(&mut self, t: PathCommTuple, dedup: bool) -> bool {
        if dedup {
            if self.seen.contains(&t) {
                return false;
            }
            self.compiled.push(&t);
            self.seen.insert(t);
        } else {
            self.compiled.push(&t);
        }
        true
    }

    fn len(&self) -> usize {
        self.compiled.len()
    }

    fn count(
        &self,
        counters: &CounterStore,
        th: &Thresholds,
        x: usize,
        phase: CountPhase,
        enforce_cond1: bool,
        enforce_cond2: bool,
    ) -> HashMap<Asn, AsCounters> {
        self.compiled
            .count_phase_sparse(counters, th, x, phase, enforce_cond1, enforce_cond2)
    }
}

/// Stable tuple→shard routing: FNV-1a over the on-path ASNs.
fn route_hash(path: &AsPath) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for asn in path.asns() {
        for b in asn.0.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// `N` shards plus the coordinator-side counting entry points.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<Shard>,
    dedup: bool,
    unique: usize,
    duplicates: u64,
}

impl ShardSet {
    /// `n` empty shards (`n >= 1`). With `dedup`, repeated identical
    /// tuples are counted once, as the paper's `TupleSet` pipeline does.
    pub fn new(n: usize, dedup: bool) -> Self {
        let n = n.max(1);
        ShardSet {
            shards: (0..n).map(|_| Shard::default()).collect(),
            dedup,
            unique: 0,
            duplicates: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a tuple routes to.
    pub fn route(&self, path: &AsPath) -> usize {
        (route_hash(path) % self.shards.len() as u64) as usize
    }

    /// Offer a tuple; returns `true` when stored (not a dedup hit).
    pub fn push(&mut self, t: PathCommTuple) -> bool {
        let idx = self.route(&t.path);
        let stored = self.shards[idx].push(t, self.dedup);
        if stored {
            self.unique += 1;
        } else {
            self.duplicates += 1;
        }
        stored
    }

    /// Tuples stored across all shards.
    pub fn stored_tuples(&self) -> usize {
        self.unique
    }

    /// Dedup hits observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Longest path currently stored.
    pub fn max_path_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.compiled.max_path_len())
            .max()
            .unwrap_or(0)
    }

    /// Per-shard stored-tuple counts (load-balance introspection).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Distinct ASNs interned across all shard stores (shards intern
    /// independently, so an AS on paths in two shards counts twice).
    pub fn interned_asns(&self) -> usize {
        self.shards.iter().map(|s| s.compiled.interned_asns()).sum()
    }

    /// Total path positions held in the shard id arenas.
    pub fn arena_hops(&self) -> usize {
        self.shards.iter().map(|s| s.compiled.arena_len()).sum()
    }

    /// Restore every shard store's length-sorted iteration order after
    /// appends. Called once per phase batch; cheap when already sorted.
    fn prepare(&mut self) {
        for s in &mut self.shards {
            s.compiled.ensure_sorted();
        }
    }

    /// Run one counting phase at column `x`: every shard counts its own
    /// compiled store against the `counters` snapshot (on its own thread
    /// when `parallel`), and the deltas are folded into one map. Returns
    /// the combined delta; the caller merges it with
    /// [`CounterStore::merge`].
    #[allow(clippy::too_many_arguments)]
    pub fn count_phase(
        &mut self,
        counters: &CounterStore,
        th: &Thresholds,
        x: usize,
        phase: CountPhase,
        enforce_cond1: bool,
        enforce_cond2: bool,
        parallel: bool,
    ) -> HashMap<Asn, AsCounters> {
        self.prepare();
        // Same small-work guard as the batch engine's parallel_count:
        // below this, spawn+join costs more than the counting itself
        // (hit hard by fine-grained epoch policies like every_events(1)).
        let parallel = parallel && self.stored_tuples() >= 1_024;
        let shards = &self.shards;
        let mut merged: HashMap<Asn, AsCounters> = HashMap::new();
        if !parallel || shards.len() == 1 {
            for s in shards {
                merge_delta_map(
                    &mut merged,
                    s.count(counters, th, x, phase, enforce_cond1, enforce_cond2),
                );
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|s| {
                        scope.spawn(move || {
                            s.count(counters, th, x, phase, enforce_cond1, enforce_cond2)
                        })
                    })
                    .collect();
                for h in handles {
                    merge_delta_map(
                        &mut merged,
                        h.join().expect("shard counting worker panicked"),
                    );
                }
            });
        }
        merged
    }

    /// Full recount over everything currently stored: the exact column
    /// loop of the batch engine (tagging phase, merge, forwarding phase,
    /// merge, next column), phases counted shard-parallel. Returns the
    /// final counters and the deepest column where anything counted.
    pub fn recount(
        &mut self,
        th: &Thresholds,
        max_index: Option<usize>,
        enforce_cond1: bool,
        enforce_cond2: bool,
        parallel: bool,
    ) -> (CounterStore, usize) {
        let mut counters = CounterStore::new();
        let max_len = self.max_path_len();
        let deepest = max_index.unwrap_or(max_len).min(max_len);
        let mut deepest_active = 0;
        for x in 1..=deepest {
            let delta = self.count_phase(
                &counters,
                th,
                x,
                CountPhase::Tagging,
                enforce_cond1,
                enforce_cond2,
                parallel,
            );
            let active1 = !delta.is_empty();
            counters.merge(&delta);

            let delta = self.count_phase(
                &counters,
                th,
                x,
                CountPhase::Forwarding,
                enforce_cond1,
                enforce_cond2,
                parallel,
            );
            let active2 = !delta.is_empty();
            counters.merge(&delta);

            if active1 || active2 {
                deepest_active = x;
            }
        }
        (counters, deepest_active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_infer::engine::{InferenceConfig, InferenceEngine};

    fn tup(p: &[u32], uppers: &[u32]) -> PathCommTuple {
        PathCommTuple::new(
            path(p),
            CommunitySet::from_iter(uppers.iter().map(|&u| AnyCommunity::tag_for(Asn(u), 100))),
        )
    }

    fn corpus() -> Vec<PathCommTuple> {
        let mut v = Vec::new();
        for i in 0..500u32 {
            let peer = 10 + (i % 7);
            v.push(tup(
                &[peer, 100 + (i % 40), 10_000 + i],
                &[peer, 100 + (i % 40)],
            ));
        }
        v
    }

    #[test]
    fn routing_is_stable_and_total() {
        let set = ShardSet::new(4, true);
        for t in corpus() {
            let a = set.route(&t.path);
            let b = set.route(&t.path);
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn dedup_is_global_across_shards() {
        let mut set = ShardSet::new(4, true);
        for t in corpus() {
            set.push(t);
        }
        let unique = set.stored_tuples();
        for t in corpus() {
            assert!(!set.push(t), "duplicate accepted");
        }
        assert_eq!(set.stored_tuples(), unique);
        assert_eq!(set.duplicates(), unique as u64);
    }

    #[test]
    fn recount_matches_batch_engine_any_shard_count() {
        let tuples = corpus();
        let batch = InferenceEngine::new(InferenceConfig {
            threads: 1,
            ..Default::default()
        })
        .run(&tuples);
        for shards in [1usize, 2, 4, 7] {
            let mut set = ShardSet::new(shards, false);
            for t in tuples.clone() {
                set.push(t);
            }
            let (counters, deepest) = set.recount(&batch.thresholds, None, true, true, shards > 1);
            assert_eq!(deepest, batch.deepest_active_index, "{shards} shards");
            let mut got: Vec<(Asn, AsCounters)> = counters.iter().collect();
            let mut want: Vec<(Asn, AsCounters)> = batch.counters.iter().collect();
            got.sort_by_key(|&(a, _)| a);
            want.sort_by_key(|&(a, _)| a);
            assert_eq!(got, want, "{shards} shards diverged from batch");
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let mut set = ShardSet::new(4, true);
        for t in corpus() {
            set.push(t);
        }
        let loads = set.shard_loads();
        assert_eq!(loads.len(), 4);
        assert!(
            loads.iter().all(|&l| l > 0),
            "a shard got nothing: {loads:?}"
        );
    }
}
