//! Topology churn: evolving a graph over time.
//!
//! The paper's longitudinal experiment (Figure 4) runs the inference on
//! quarterly snapshots over two years and finds stable class counts. To
//! reproduce the *shape* of that experiment we need a time-evolving
//! substrate: a base topology where, each epoch, some edge ASes disappear
//! and new ones appear while the transit core persists — which is how the
//! real AS-level graph actually evolves (churn concentrates at the edge).

use crate::generate::TopologyConfig;
use crate::graph::{AsGraph, NodeId, Relationship, Tier};
use bgp_types::prelude::*;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Produces a sequence of topology snapshots with edge churn.
#[derive(Debug, Clone)]
pub struct ChurnModel {
    /// Fraction of edge ASes replaced per epoch (paper-era reality: a few
    /// percent per quarter).
    pub edge_churn: f64,
    /// Seed for churn decisions.
    pub seed: u64,
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel {
            edge_churn: 0.03,
            seed: 7,
        }
    }
}

impl ChurnModel {
    /// Generate `epochs` snapshots starting from `cfg`'s base topology.
    ///
    /// Snapshot 0 is the base graph; each later snapshot replaces
    /// `edge_churn` of the edge ASes with fresh ones (new ASNs, new
    /// provider choices). Core (Tier-1/transit) ASes and their ASNs are
    /// stable across snapshots, so per-AS behavior comparisons over time
    /// are meaningful.
    pub fn snapshots(&self, cfg: &TopologyConfig, epochs: usize) -> Vec<AsGraph> {
        let base = cfg.build();
        let mut out = Vec::with_capacity(epochs);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut current = base;
        out.push(current.clone());
        for epoch in 1..epochs {
            current = self.step(&current, &mut rng, cfg, epoch);
            out.push(current.clone());
        }
        out
    }

    /// One churn step: rebuild the graph, dropping a random subset of edge
    /// ASes and adding replacements.
    fn step(&self, g: &AsGraph, rng: &mut StdRng, cfg: &TopologyConfig, epoch: usize) -> AsGraph {
        let edge_ids: Vec<NodeId> = g
            .node_ids()
            .filter(|&id| g.node(id).tier == Tier::Edge)
            .collect();
        let n_replace = ((edge_ids.len() as f64) * self.edge_churn).round() as usize;
        let mut removed: BTreeSet<NodeId> = BTreeSet::new();
        while removed.len() < n_replace && removed.len() < edge_ids.len() {
            removed.insert(*edge_ids.choose(rng).unwrap());
        }

        let mut ng = AsGraph::new();
        // Copy survivors, remembering id remapping.
        let mut remap: Vec<Option<NodeId>> = vec![None; g.node_count()];
        for id in g.node_ids() {
            if removed.contains(&id) {
                continue;
            }
            let node = g.node(id);
            let nid = ng.add_node(node.asn, node.tier);
            ng.set_collector_peer(nid, node.collector_peer);
            remap[id as usize] = Some(nid);
        }
        for id in g.node_ids() {
            let Some(a) = remap[id as usize] else {
                continue;
            };
            for &p in g.providers(id) {
                if let Some(b) = remap[p as usize] {
                    ng.add_edge(a, b, Relationship::CustomerToProvider);
                }
            }
            for &p in g.peers(id) {
                if p > id {
                    if let Some(b) = remap[p as usize] {
                        ng.add_edge(a, b, Relationship::PeerToPeer);
                    }
                }
            }
        }

        // Add replacements with fresh ASNs attached to random transit ASes.
        let existing: BTreeSet<Asn> = ng.asns().collect();
        let transits: Vec<NodeId> = ng
            .node_ids()
            .filter(|&id| ng.node(id).tier != Tier::Edge)
            .collect();
        let mut added = 0;
        while added < n_replace {
            let v = if rng.random_bool(cfg.frac_32bit) {
                rng.random_range(131_072u32..4_199_999_999)
            } else {
                rng.random_range(1u32..64_495)
            };
            let asn = Asn(v);
            if !asn.is_public_range() || existing.contains(&asn) || ng.id_of(asn).is_some() {
                continue;
            }
            let nid = ng.add_node(asn, Tier::Edge);
            let nproviders = 1 + (epoch + added) % 2;
            for _ in 0..nproviders {
                if let Some(&p) = transits.choose(rng) {
                    ng.add_edge(nid, p, Relationship::CustomerToProvider);
                }
            }
            added += 1;
        }
        ng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_preserve_core() {
        let cfg = TopologyConfig::small();
        let snaps = ChurnModel::default().snapshots(&cfg, 4);
        assert_eq!(snaps.len(), 4);
        let core0: BTreeSet<Asn> = snaps[0]
            .node_ids()
            .filter(|&id| snaps[0].node(id).tier != Tier::Edge)
            .map(|id| snaps[0].asn_of(id))
            .collect();
        for s in &snaps[1..] {
            let core: BTreeSet<Asn> = s
                .node_ids()
                .filter(|&id| s.node(id).tier != Tier::Edge)
                .map(|id| s.asn_of(id))
                .collect();
            assert_eq!(core, core0, "core ASes must persist across churn");
        }
    }

    #[test]
    fn node_count_stable() {
        let cfg = TopologyConfig::small();
        let snaps = ChurnModel::default().snapshots(&cfg, 3);
        for s in &snaps {
            assert_eq!(s.node_count(), cfg.total());
        }
    }

    #[test]
    fn edges_churn() {
        let cfg = TopologyConfig::small();
        let snaps = ChurnModel {
            edge_churn: 0.1,
            seed: 3,
        }
        .snapshots(&cfg, 2);
        let edges0: BTreeSet<Asn> = snaps[0]
            .node_ids()
            .filter(|&id| snaps[0].node(id).tier == Tier::Edge)
            .map(|id| snaps[0].asn_of(id))
            .collect();
        let edges1: BTreeSet<Asn> = snaps[1]
            .node_ids()
            .filter(|&id| snaps[1].node(id).tier == Tier::Edge)
            .map(|id| snaps[1].asn_of(id))
            .collect();
        let departed = edges0.difference(&edges1).count();
        let arrived = edges1.difference(&edges0).count();
        assert!(departed > 0 && arrived > 0);
        assert_eq!(departed, arrived); // replacement keeps size constant
    }

    #[test]
    fn churned_graphs_still_connected() {
        let cfg = TopologyConfig::small();
        let snaps = ChurnModel::default().snapshots(&cfg, 3);
        let last = snaps.last().unwrap();
        for id in last.node_ids() {
            if last.node(id).tier != Tier::Tier1 {
                assert!(!last.providers(id).is_empty() || !last.peers(id).is_empty());
            }
        }
    }
}
