//! Customer cones (CAIDA definition).
//!
//! The customer cone of an AS is the AS itself plus every AS reachable by
//! traversing only customer links downward. Leaf ASes have cone size 1.
//! The paper uses cone size as the AS-size indicator in Figure 6
//! ("tagger/forward/cleaner ASes typically have large cones, silent ASes
//! sit at the edge").

use crate::graph::{AsGraph, NodeId};
use bgp_types::prelude::*;
use std::collections::HashMap;

/// Computed customer cone sizes for every node of a graph.
#[derive(Debug, Clone)]
pub struct CustomerCones {
    sizes: Vec<u32>,
    by_asn: HashMap<Asn, u32>,
}

impl CustomerCones {
    /// Compute cone sizes for all nodes.
    ///
    /// Implemented as a reverse-topological accumulation over the customer
    /// DAG with an explicit per-node reachability bitmap for correctness in
    /// the presence of multi-path (a customer reachable via two providers
    /// must be counted once). For the graph sizes used here (≤ ~73k nodes)
    /// a per-node visited-epoch DFS is fast enough and exact.
    pub fn compute(g: &AsGraph) -> Self {
        let n = g.node_count();
        let mut sizes = vec![0u32; n];
        let mut epoch = vec![u32::MAX; n];
        let mut stack: Vec<NodeId> = Vec::new();

        for root in 0..n as NodeId {
            let mut count = 0u32;
            stack.push(root);
            while let Some(u) = stack.pop() {
                if epoch[u as usize] == root {
                    continue;
                }
                epoch[u as usize] = root;
                count += 1;
                for &c in g.customers(u) {
                    if epoch[c as usize] != root {
                        stack.push(c);
                    }
                }
            }
            sizes[root as usize] = count;
        }

        let by_asn = g
            .node_ids()
            .map(|id| (g.asn_of(id), sizes[id as usize]))
            .collect();
        CustomerCones { sizes, by_asn }
    }

    /// Cone size of a node id.
    pub fn size(&self, id: NodeId) -> u32 {
        self.sizes[id as usize]
    }

    /// Cone size by ASN (1 for unknown ASNs, the leaf default).
    pub fn size_of_asn(&self, asn: Asn) -> u32 {
        self.by_asn.get(&asn).copied().unwrap_or(1)
    }

    /// All (ASN, cone size) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, u32)> + '_ {
        self.by_asn.iter().map(|(&a, &s)| (a, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{AsGraph, Relationship, Tier};

    #[test]
    fn chain_cones() {
        // t1 <- t <- e : cone(t1)=3, cone(t)=2, cone(e)=1.
        let mut g = AsGraph::new();
        let t1 = g.add_node(Asn(1), Tier::Tier1);
        let t = g.add_node(Asn(2), Tier::Transit);
        let e = g.add_node(Asn(3), Tier::Edge);
        g.add_edge(t, t1, Relationship::CustomerToProvider);
        g.add_edge(e, t, Relationship::CustomerToProvider);
        let cones = CustomerCones::compute(&g);
        assert_eq!(cones.size(t1), 3);
        assert_eq!(cones.size(t), 2);
        assert_eq!(cones.size(e), 1);
        assert_eq!(cones.size_of_asn(Asn(1)), 3);
        assert_eq!(cones.size_of_asn(Asn(99)), 1);
    }

    #[test]
    fn diamond_counts_once() {
        //      top
        //     /   \
        //    a     b
        //     \   /
        //      leaf        cone(top) = 4, not 5.
        let mut g = AsGraph::new();
        let top = g.add_node(Asn(1), Tier::Tier1);
        let a = g.add_node(Asn(2), Tier::Transit);
        let b = g.add_node(Asn(3), Tier::Transit);
        let leaf = g.add_node(Asn(4), Tier::Edge);
        g.add_edge(a, top, Relationship::CustomerToProvider);
        g.add_edge(b, top, Relationship::CustomerToProvider);
        g.add_edge(leaf, a, Relationship::CustomerToProvider);
        g.add_edge(leaf, b, Relationship::CustomerToProvider);
        let cones = CustomerCones::compute(&g);
        assert_eq!(cones.size(top), 4);
        assert_eq!(cones.size(a), 2);
        assert_eq!(cones.size(b), 2);
    }

    #[test]
    fn peers_do_not_contribute() {
        let mut g = AsGraph::new();
        let a = g.add_node(Asn(1), Tier::Transit);
        let b = g.add_node(Asn(2), Tier::Transit);
        let c = g.add_node(Asn(3), Tier::Edge);
        g.add_edge(a, b, Relationship::PeerToPeer);
        g.add_edge(c, b, Relationship::CustomerToProvider);
        let cones = CustomerCones::compute(&g);
        assert_eq!(cones.size(a), 1); // peer's customers not in cone
        assert_eq!(cones.size(b), 2);
    }

    #[test]
    fn generated_topology_cone_sanity() {
        use crate::generate::TopologyConfig;
        let g = TopologyConfig::small().seed(7).build();
        let cones = CustomerCones::compute(&g);
        // Every edge AS has cone 1; some Tier-1 has a cone covering a
        // sizable share of the topology.
        for id in g.node_ids() {
            if g.is_stub(id) {
                assert_eq!(cones.size(id), 1);
            }
        }
        let max = g.node_ids().map(|i| cones.size(i)).max().unwrap();
        assert!(
            max as usize > g.node_count() / 10,
            "largest cone {max} suspiciously small"
        );
    }
}
