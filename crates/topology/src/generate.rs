//! Seeded generation of Internet-like AS topologies.
//!
//! The generator produces the macro-structure the paper's substrate (real
//! AS paths from `d_May21`) exhibits:
//!
//! * a small transit-free **Tier-1 clique**,
//! * a middle layer of **transit** providers with 1–3 providers each,
//!   preferentially attached (rich get richer) plus lateral peering,
//! * a large majority (~83% in the paper) of **edge/leaf** ASes with
//!   multihomed provider links and no customers,
//! * a realistic **32-bit ASN share** (~43% in Table 1),
//! * a set of **collector peers** biased toward large ASes but including
//!   some stubs (the paper observes 64 of 766 peers appearing as leaves).
//!
//! Everything is driven by a single `u64` seed for reproducibility.

use crate::graph::{AsGraph, NodeId, Relationship, Tier};
use bgp_types::prelude::*;
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Configuration for topology generation.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Number of Tier-1 (clique) ASes.
    pub tier1: usize,
    /// Number of transit ASes.
    pub transit: usize,
    /// Number of edge (stub) ASes.
    pub edge: usize,
    /// Number of collector peers to select.
    pub collector_peers: usize,
    /// Fraction of ASes receiving a 32-bit-only ASN (paper: ≈0.43).
    pub frac_32bit: f64,
    /// Probability of an extra lateral peer link per transit AS.
    pub transit_peering: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TopologyConfig {
    /// A laptop-scale topology (~1.2k ASes) for tests and examples.
    pub fn small() -> Self {
        TopologyConfig {
            tier1: 8,
            transit: 180,
            edge: 1_000,
            collector_peers: 60,
            frac_32bit: 0.43,
            transit_peering: 0.4,
            seed: 1,
        }
    }

    /// The default experiment scale (~7.3k ASes): a 1:10 scale model of the
    /// paper's 72,951-AS substrate, preserving the tier proportions.
    pub fn paper_scale() -> Self {
        TopologyConfig {
            tier1: 12,
            transit: 1_230,
            edge: 6_050,
            collector_peers: 77, // 766 / 10, ≈1% of ASes as in the paper
            frac_32bit: 0.43,
            transit_peering: 0.5,
            seed: 1,
        }
    }

    /// Full paper scale (~73k ASes). Expensive: minutes per routing pass.
    pub fn full_scale() -> Self {
        TopologyConfig {
            tier1: 15,
            transit: 12_300,
            edge: 60_400,
            collector_peers: 766,
            frac_32bit: 0.43,
            transit_peering: 0.5,
            seed: 1,
        }
    }

    /// Set the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total AS count this config will generate.
    pub fn total(&self) -> usize {
        self.tier1 + self.transit + self.edge
    }

    /// Generate the topology.
    pub fn build(&self) -> AsGraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut g = AsGraph::new();

        let asns = generate_asns(self.total(), self.frac_32bit, &mut rng);
        let mut it = asns.into_iter();

        // Tier-1 clique.
        let t1: Vec<NodeId> = (0..self.tier1)
            .map(|_| g.add_node(it.next().unwrap(), Tier::Tier1))
            .collect();
        for i in 0..t1.len() {
            for j in (i + 1)..t1.len() {
                g.add_edge(t1[i], t1[j], Relationship::PeerToPeer);
            }
        }

        // Transit layer with preferential attachment: provider chosen with
        // probability proportional to current customer count + 1.
        let mut transits: Vec<NodeId> = Vec::with_capacity(self.transit);
        for _ in 0..self.transit {
            let id = g.add_node(it.next().unwrap(), Tier::Transit);
            let nproviders = 1 + rng.random_range(0..3.min(1 + transits.len()));
            let mut chosen = BTreeSet::new();
            for _ in 0..nproviders {
                let p = pick_provider(&g, &t1, &transits, &mut rng);
                if p != id {
                    chosen.insert(p);
                }
            }
            for p in chosen {
                g.add_edge(id, p, Relationship::CustomerToProvider);
            }
            // Lateral peering among transit ASes.
            if !transits.is_empty() && rng.random_bool(self.transit_peering) {
                let peer = *transits.choose(&mut rng).unwrap();
                g.add_edge(id, peer, Relationship::PeerToPeer);
            }
            transits.push(id);
        }

        // Edge layer: multihome to 1..=3 transit (rarely Tier-1) providers.
        for _ in 0..self.edge {
            let id = g.add_node(it.next().unwrap(), Tier::Edge);
            let nproviders = 1 + rng.random_range(0..3usize);
            let mut chosen = BTreeSet::new();
            for _ in 0..nproviders {
                let p = if !transits.is_empty() && rng.random_bool(0.93) {
                    pick_provider(&g, &[], &transits, &mut rng)
                } else {
                    *t1.choose(&mut rng).unwrap()
                };
                chosen.insert(p);
            }
            for p in chosen {
                g.add_edge(id, p, Relationship::CustomerToProvider);
            }
        }

        // Collector peers: all Tier-1, then transit by descending degree,
        // plus ~8% stubs (the paper sees a small leaf share among peers).
        let n_stub_peers = (self.collector_peers as f64 * 0.08).round() as usize;
        let n_large_peers = self.collector_peers.saturating_sub(n_stub_peers);
        let mut large: Vec<NodeId> = t1.iter().chain(transits.iter()).copied().collect();
        large.sort_by_key(|&id| std::cmp::Reverse(g.customers(id).len()));
        for &id in large.iter().take(n_large_peers) {
            g.set_collector_peer(id, true);
        }
        let mut stubs: Vec<NodeId> = g
            .node_ids()
            .filter(|&id| g.is_stub(id) && g.node(id).tier == Tier::Edge)
            .collect();
        stubs.shuffle(&mut rng);
        for &id in stubs.iter().take(n_stub_peers) {
            g.set_collector_peer(id, true);
        }

        g
    }
}

/// Draw `n` unique public ASNs with roughly `frac_32bit` of them 32-bit.
fn generate_asns(n: usize, frac_32bit: f64, rng: &mut StdRng) -> Vec<Asn> {
    let mut set = BTreeSet::new();
    while set.len() < n {
        let v = if rng.random_bool(frac_32bit) {
            rng.random_range(131_072u32..4_199_999_999)
        } else {
            rng.random_range(1u32..64_495)
        };
        let asn = Asn(v);
        if asn.is_public_range() {
            set.insert(asn);
        }
    }
    let mut v: Vec<Asn> = set.into_iter().collect();
    v.shuffle(rng);
    v
}

/// Preferential attachment: weight candidates by customer degree + 1.
fn pick_provider(g: &AsGraph, t1: &[NodeId], transits: &[NodeId], rng: &mut StdRng) -> NodeId {
    let candidates: Vec<NodeId> = t1.iter().chain(transits.iter()).copied().collect();
    debug_assert!(!candidates.is_empty(), "no provider candidates");
    let total: usize = candidates.iter().map(|&c| g.customers(c).len() + 1).sum();
    let mut pick = rng.random_range(0..total);
    for &c in &candidates {
        let w = g.customers(c).len() + 1;
        if pick < w {
            return c;
        }
        pick -= w;
    }
    *candidates.last().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_topology_shape() {
        let cfg = TopologyConfig::small();
        let g = cfg.build();
        assert_eq!(g.node_count(), cfg.total());
        // Every non-Tier1 node has at least one provider (connectivity).
        for id in g.node_ids() {
            if g.node(id).tier != Tier::Tier1 {
                assert!(!g.providers(id).is_empty(), "node {id} disconnected");
            }
        }
        // Edge nodes have no customers.
        for id in g.node_ids() {
            if g.node(id).tier == Tier::Edge {
                assert!(g.is_stub(id));
            }
        }
        assert_eq!(g.collector_peers().len(), cfg.collector_peers);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = TopologyConfig::small().seed(42).build();
        let b = TopologyConfig::small().seed(42).build();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let asns_a: Vec<Asn> = a.asns().collect();
        let asns_b: Vec<Asn> = b.asns().collect();
        assert_eq!(asns_a, asns_b);
        assert_eq!(a.collector_peers(), b.collector_peers());
    }

    #[test]
    fn different_seed_differs() {
        let a = TopologyConfig::small().seed(1).build();
        let b = TopologyConfig::small().seed(2).build();
        let asns_a: Vec<Asn> = a.asns().collect();
        let asns_b: Vec<Asn> = b.asns().collect();
        assert_ne!(asns_a, asns_b);
    }

    #[test]
    fn thirty_two_bit_share_close_to_config() {
        let g = TopologyConfig::small().seed(3).build();
        let n32 = g.asns().filter(|a| a.is_32bit_only()).count();
        let share = n32 as f64 / g.node_count() as f64;
        assert!(
            (0.3..0.55).contains(&share),
            "32-bit share {share} out of band"
        );
    }

    #[test]
    fn all_asns_public() {
        let g = TopologyConfig::small().seed(4).build();
        assert!(g.asns().all(|a| a.is_public_range()));
    }

    #[test]
    fn tier1_clique_fully_peered() {
        let g = TopologyConfig::small().seed(5).build();
        let t1: Vec<_> = g
            .node_ids()
            .filter(|&id| g.node(id).tier == Tier::Tier1)
            .collect();
        for &a in &t1 {
            for &b in &t1 {
                if a != b {
                    assert!(g.peers(a).contains(&b), "tier1 clique edge missing");
                }
            }
            // Tier-1s have no providers.
            assert!(g.providers(a).is_empty());
        }
    }

    #[test]
    fn collector_peers_include_stubs() {
        let g = TopologyConfig::small().seed(6).build();
        let stub_peers = g
            .collector_peer_ids()
            .into_iter()
            .filter(|&id| g.is_stub(id))
            .count();
        assert!(stub_peers > 0, "expected some stub collector peers");
    }
}
