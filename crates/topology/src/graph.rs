//! The AS-level graph: nodes, business relationships, adjacency.
//!
//! Edges carry the two Gao–Rexford relationship types the paper's selective
//! scenarios depend on (§6.2): **customer→provider** (c2p) and
//! **peer↔peer** (p2p). The graph is stored index-based with dense
//! adjacency lists split by relationship direction, because the routing
//! pass (three-stage valley-free BFS) iterates providers / customers /
//! peers of a node separately and hot.

use bgp_types::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Business relationship of an edge, from the perspective of (a, b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// `a` is a customer of `b` (a pays b for transit).
    CustomerToProvider,
    /// `a` and `b` are settlement-free peers.
    PeerToPeer,
}

/// Dense node identifier inside one [`AsGraph`].
pub type NodeId = u32;

/// Tier of an AS in the generated hierarchy (used for peer selection and
/// characterization; inference never sees this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Transit-free core (clique).
    Tier1,
    /// Regional/national transit provider.
    Transit,
    /// Edge network: originates prefixes, no customers.
    Edge,
}

/// One AS in the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    /// The AS number.
    pub asn: Asn,
    /// Hierarchy tier.
    pub tier: Tier,
    /// Whether this AS peers with a route collector.
    pub collector_peer: bool,
}

/// An immutable-after-build AS-level topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsGraph {
    nodes: Vec<AsNode>,
    by_asn: HashMap<Asn, NodeId>,
    /// Providers of each node (edges the node pays for).
    providers: Vec<Vec<NodeId>>,
    /// Customers of each node.
    customers: Vec<Vec<NodeId>>,
    /// Peers of each node.
    peers: Vec<Vec<NodeId>>,
}

impl AsGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; returns its dense id. Panics on duplicate ASN — the
    /// generator owns ASN uniqueness.
    pub fn add_node(&mut self, asn: Asn, tier: Tier) -> NodeId {
        assert!(
            !self.by_asn.contains_key(&asn),
            "duplicate ASN {asn} inserted into graph"
        );
        let id = self.nodes.len() as NodeId;
        self.nodes.push(AsNode {
            asn,
            tier,
            collector_peer: false,
        });
        self.by_asn.insert(asn, id);
        self.providers.push(Vec::new());
        self.customers.push(Vec::new());
        self.peers.push(Vec::new());
        id
    }

    /// Add an edge. For [`Relationship::CustomerToProvider`], `a` is the
    /// customer and `b` the provider. Duplicate edges are ignored.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, rel: Relationship) {
        if a == b {
            return;
        }
        match rel {
            Relationship::CustomerToProvider => {
                if !self.providers[a as usize].contains(&b) {
                    self.providers[a as usize].push(b);
                    self.customers[b as usize].push(a);
                }
            }
            Relationship::PeerToPeer => {
                if !self.peers[a as usize].contains(&b) {
                    self.peers[a as usize].push(b);
                    self.peers[b as usize].push(a);
                }
            }
        }
    }

    /// Mark a node as a collector peer.
    pub fn set_collector_peer(&mut self, id: NodeId, is_peer: bool) {
        self.nodes[id as usize].collector_peer = is_peer;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (c2p + p2p, each counted once).
    pub fn edge_count(&self) -> usize {
        let c2p: usize = self.providers.iter().map(Vec::len).sum();
        let p2p: usize = self.peers.iter().map(Vec::len).sum();
        c2p + p2p / 2
    }

    /// Node data by id.
    pub fn node(&self, id: NodeId) -> &AsNode {
        &self.nodes[id as usize]
    }

    /// Dense id for an ASN.
    pub fn id_of(&self, asn: Asn) -> Option<NodeId> {
        self.by_asn.get(&asn).copied()
    }

    /// ASN for a dense id.
    pub fn asn_of(&self, id: NodeId) -> Asn {
        self.nodes[id as usize].asn
    }

    /// Providers of `id`.
    pub fn providers(&self, id: NodeId) -> &[NodeId] {
        &self.providers[id as usize]
    }

    /// Customers of `id`.
    pub fn customers(&self, id: NodeId) -> &[NodeId] {
        &self.customers[id as usize]
    }

    /// Peers of `id`.
    pub fn peers(&self, id: NodeId) -> &[NodeId] {
        &self.peers[id as usize]
    }

    /// Iterate all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.nodes.len() as NodeId
    }

    /// All ASNs in the graph.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.nodes.iter().map(|n| n.asn)
    }

    /// ASNs of all collector peers.
    pub fn collector_peers(&self) -> Vec<Asn> {
        self.nodes
            .iter()
            .filter(|n| n.collector_peer)
            .map(|n| n.asn)
            .collect()
    }

    /// Node ids of all collector peers.
    pub fn collector_peer_ids(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.nodes[id as usize].collector_peer)
            .collect()
    }

    /// Whether a node has no customers (an *edge* of the AS-level graph;
    /// such ASes can only ever appear as path origins).
    pub fn is_stub(&self, id: NodeId) -> bool {
        self.customers[id as usize].is_empty()
    }

    /// The relationship between adjacent nodes `a` and `b` from `a`'s
    /// perspective, or `None` when not adjacent.
    pub fn relationship(&self, a: NodeId, b: NodeId) -> Option<EdgeKind> {
        if self.providers[a as usize].contains(&b) {
            Some(EdgeKind::Provider)
        } else if self.customers[a as usize].contains(&b) {
            Some(EdgeKind::Customer)
        } else if self.peers[a as usize].contains(&b) {
            Some(EdgeKind::Peer)
        } else {
            None
        }
    }
}

/// How a neighbor relates to a node: the node's Provider, Customer or Peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Neighbor is my provider (I pay them).
    Provider,
    /// Neighbor is my customer (they pay me).
    Customer,
    /// Neighbor is my settlement-free peer.
    Peer,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (AsGraph, NodeId, NodeId, NodeId) {
        let mut g = AsGraph::new();
        let p = g.add_node(Asn(100), Tier::Tier1);
        let t = g.add_node(Asn(200), Tier::Transit);
        let e = g.add_node(Asn(300), Tier::Edge);
        g.add_edge(t, p, Relationship::CustomerToProvider);
        g.add_edge(e, t, Relationship::CustomerToProvider);
        (g, p, t, e)
    }

    #[test]
    fn adjacency_directions() {
        let (g, p, t, e) = tiny();
        assert_eq!(g.providers(t), &[p]);
        assert_eq!(g.customers(p), &[t]);
        assert_eq!(g.providers(e), &[t]);
        assert!(g.customers(e).is_empty());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn peer_edges_are_symmetric() {
        let mut g = AsGraph::new();
        let a = g.add_node(Asn(1), Tier::Tier1);
        let b = g.add_node(Asn(2), Tier::Tier1);
        g.add_edge(a, b, Relationship::PeerToPeer);
        assert_eq!(g.peers(a), &[b]);
        assert_eq!(g.peers(b), &[a]);
        assert_eq!(g.edge_count(), 1);
        // Duplicate insert ignored.
        g.add_edge(b, a, Relationship::PeerToPeer);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_ignored() {
        let mut g = AsGraph::new();
        let a = g.add_node(Asn(1), Tier::Edge);
        g.add_edge(a, a, Relationship::PeerToPeer);
        g.add_edge(a, a, Relationship::CustomerToProvider);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn relationship_lookup() {
        let (g, p, t, e) = tiny();
        assert_eq!(g.relationship(t, p), Some(EdgeKind::Provider));
        assert_eq!(g.relationship(p, t), Some(EdgeKind::Customer));
        assert_eq!(g.relationship(p, e), None);
    }

    #[test]
    fn stub_detection() {
        let (g, p, t, e) = tiny();
        assert!(g.is_stub(e));
        assert!(!g.is_stub(t));
        assert!(!g.is_stub(p));
    }

    #[test]
    fn collector_peer_marking() {
        let (mut g, p, _, e) = tiny();
        g.set_collector_peer(p, true);
        g.set_collector_peer(e, true);
        let mut peers = g.collector_peers();
        peers.sort();
        assert_eq!(peers, vec![Asn(100), Asn(300)]);
        assert_eq!(g.collector_peer_ids().len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate ASN")]
    fn duplicate_asn_panics() {
        let mut g = AsGraph::new();
        g.add_node(Asn(1), Tier::Edge);
        g.add_node(Asn(1), Tier::Edge);
    }

    #[test]
    fn id_asn_mapping() {
        let (g, p, ..) = tiny();
        assert_eq!(g.id_of(Asn(100)), Some(p));
        assert_eq!(g.asn_of(p), Asn(100));
        assert_eq!(g.id_of(Asn(999)), None);
    }
}
