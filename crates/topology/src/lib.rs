//! # bgp-topology
//!
//! Internet-like AS-level topology substrate for the IMC'21 community-usage
//! reproduction:
//!
//! * [`graph`] — the AS graph with Gao–Rexford business relationships
//!   (customer→provider, peer↔peer);
//! * [`generate`] — seeded, tiered topology generation (Tier-1 clique,
//!   preferentially-attached transit layer, multihomed edge) matching the
//!   macro-structure of the paper's `d_May21` substrate;
//! * [`routing`] — valley-free routing trees and the full collector-peer
//!   path substrate;
//! * [`cone`] — CAIDA-style customer cones (the AS-size metric of Fig. 6);
//! * [`churn`] — edge churn for the longitudinal experiment (Fig. 4).
//!
//! ```
//! use bgp_topology::prelude::*;
//!
//! let g = TopologyConfig::small().seed(42).build();
//! let substrate = PathSubstrate::generate_for_origins(
//!     &g, &g.node_ids().take(50).collect::<Vec<_>>(), 2);
//! assert!(!substrate.is_empty());
//! let cones = CustomerCones::compute(&g);
//! let biggest = g.node_ids().map(|i| cones.size(i)).max().unwrap();
//! assert!(biggest > 1);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod cone;
pub mod generate;
pub mod graph;
pub mod routing;

/// Commonly used items.
pub mod prelude {
    pub use crate::churn::ChurnModel;
    pub use crate::cone::CustomerCones;
    pub use crate::generate::TopologyConfig;
    pub use crate::graph::{AsGraph, AsNode, EdgeKind, NodeId, Relationship, Tier};
    pub use crate::routing::{is_valley_free, PathSubstrate, Route, RouteKind, RoutingTree};
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Every path the router produces must be valley-free, regardless
        /// of seed.
        #[test]
        fn all_paths_valley_free(seed in 0u64..500) {
            let mut cfg = TopologyConfig::small();
            cfg.transit = 40;
            cfg.edge = 120;
            cfg.collector_peers = 10;
            let g = cfg.seed(seed).build();
            let origins: Vec<NodeId> = g.node_ids().step_by(17).collect();
            for &o in &origins {
                let tree = RoutingTree::compute(&g, o);
                for p in g.collector_peer_ids() {
                    if let Some(path) = tree.node_path(p) {
                        prop_assert!(is_valley_free(&g, &path));
                    }
                }
            }
        }

        /// Routing trees never contain loops: path extraction terminates
        /// and each node appears once.
        #[test]
        fn paths_are_simple(seed in 0u64..500) {
            let mut cfg = TopologyConfig::small();
            cfg.transit = 30;
            cfg.edge = 80;
            cfg.collector_peers = 8;
            let g = cfg.seed(seed).build();
            let o = g.node_ids().next().unwrap();
            let tree = RoutingTree::compute(&g, o);
            for p in g.collector_peer_ids() {
                if let Some(path) = tree.node_path(p) {
                    let mut sorted = path.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), path.len(), "loop in path");
                }
            }
        }
    }
}
