//! Valley-free route computation (Gao–Rexford model).
//!
//! For a destination AS `o`, announcements propagate:
//!
//! 1. **uphill** — routes learned from a customer are exported to
//!    providers (and everyone else);
//! 2. **across** — routes learned from a customer are exported to peers;
//! 3. **downhill** — every route is exported to customers.
//!
//! Each AS picks one best route with the standard preference: customer >
//! peer > provider, then shortest AS path, then lowest next-hop ASN (our
//! deterministic analogue of router-id tie-breaking). The result is a
//! routing tree rooted at `o`; the AS path observed at any collector peer
//! is the tree path from the peer down to `o` — exactly the `A1..An`
//! sequence in MRT data.
//!
//! One routing pass is `O(E)`; computing the full substrate runs one pass
//! per origin, parallelized over origins with scoped threads.

use crate::graph::{AsGraph, NodeId};
use bgp_types::prelude::*;

/// How a node learned its best route (preference order matters: lower is
/// more preferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RouteKind {
    /// The node is the origin itself.
    Origin,
    /// Learned from a customer.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

/// A node's best route toward the current origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Route preference class.
    pub kind: RouteKind,
    /// Hops to the origin.
    pub len: u16,
    /// Next hop toward the origin.
    pub next: NodeId,
}

/// Routing state for one origin: `routes[node]` is the node's best route.
#[derive(Debug, Clone)]
pub struct RoutingTree {
    /// The origin node.
    pub origin: NodeId,
    routes: Vec<Option<Route>>,
}

impl RoutingTree {
    /// Compute the valley-free routing tree for `origin`.
    pub fn compute(g: &AsGraph, origin: NodeId) -> Self {
        let n = g.node_count();
        let mut routes: Vec<Option<Route>> = vec![None; n];
        routes[origin as usize] = Some(Route {
            kind: RouteKind::Origin,
            len: 0,
            next: origin,
        });

        // --- Stage 1: uphill BFS (customer routes) --------------------
        // Frontier contains nodes whose route may be exported to providers.
        let mut frontier = vec![origin];
        let mut level: u16 = 0;
        while !frontier.is_empty() {
            level += 1;
            // Gather candidates for this level: provider p of u gets (u).
            let mut candidates: Vec<(NodeId, NodeId)> = Vec::new(); // (p, next=u)
            for &u in &frontier {
                for &p in g.providers(u) {
                    if routes[p as usize].is_none() {
                        candidates.push((p, u));
                    }
                }
            }
            // Deterministic best pick per node: lowest next-hop ASN.
            candidates.sort_by_key(|&(p, u)| (p, g.asn_of(u)));
            let mut next_frontier = Vec::new();
            for (p, u) in candidates {
                if routes[p as usize].is_none() {
                    routes[p as usize] = Some(Route {
                        kind: RouteKind::Customer,
                        len: level,
                        next: u,
                    });
                    next_frontier.push(p);
                }
            }
            frontier = next_frontier;
        }

        // --- Stage 2: one peer hop ------------------------------------
        // Only customer/origin routes are exported to peers.
        let mut peer_candidates: Vec<(NodeId, u16, NodeId)> = Vec::new(); // (v, len, next=u)
        for u in 0..n as NodeId {
            if let Some(r) = routes[u as usize] {
                if matches!(r.kind, RouteKind::Origin | RouteKind::Customer) {
                    for &v in g.peers(u) {
                        if routes[v as usize].is_none() {
                            peer_candidates.push((v, r.len + 1, u));
                        }
                    }
                }
            }
        }
        peer_candidates.sort_by_key(|&(v, len, u)| (v, len, g.asn_of(u)));
        for (v, len, u) in peer_candidates {
            if routes[v as usize].is_none() {
                routes[v as usize] = Some(Route {
                    kind: RouteKind::Peer,
                    len,
                    next: u,
                });
            }
        }

        // --- Stage 3: downhill bucket-BFS (provider routes) -----------
        // Every routed node exports to its customers; provider routes may
        // cascade further downhill only.
        let max_len = routes.iter().flatten().map(|r| r.len).max().unwrap_or(0) as usize;
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_len + n + 2];
        for u in 0..n as NodeId {
            if let Some(r) = routes[u as usize] {
                buckets[r.len as usize].push(u);
            }
        }
        let mut l = 0;
        while l < buckets.len() {
            // Sort for deterministic tie-breaking within a level.
            let mut us = std::mem::take(&mut buckets[l]);
            us.sort_by_key(|&u| g.asn_of(u));
            for u in us {
                let r = routes[u as usize].expect("bucketed node has route");
                if r.len as usize != l {
                    continue; // superseded (shouldn't happen; guard anyway)
                }
                for &c in g.customers(u) {
                    if routes[c as usize].is_none() {
                        let nr = Route {
                            kind: RouteKind::Provider,
                            len: r.len + 1,
                            next: u,
                        };
                        routes[c as usize] = Some(nr);
                        buckets[nr.len as usize].push(c);
                    }
                }
            }
            l += 1;
        }

        RoutingTree { origin, routes }
    }

    /// The best route of `node`, if reachable.
    pub fn route(&self, node: NodeId) -> Option<Route> {
        self.routes[node as usize]
    }

    /// Number of nodes with a route (including the origin).
    pub fn reachable_count(&self) -> usize {
        self.routes.iter().flatten().count()
    }

    /// The AS path from `from` to the origin as node ids
    /// (`from, ..., origin`), or `None` if unreachable.
    pub fn node_path(&self, from: NodeId) -> Option<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut cur = from;
        loop {
            let r = self.routes[cur as usize]?;
            out.push(cur);
            if r.kind == RouteKind::Origin {
                return Some(out);
            }
            cur = r.next;
            if out.len() > self.routes.len() {
                unreachable!("routing loop detected");
            }
        }
    }

    /// The AS path from `from` to the origin as an [`AsPath`]
    /// (`A1 = from`, `An = origin`).
    pub fn as_path(&self, g: &AsGraph, from: NodeId) -> Option<AsPath> {
        let nodes = self.node_path(from)?;
        AsPath::new(nodes.into_iter().map(|id| g.asn_of(id)).collect())
    }
}

/// The full path substrate: for every origin, the paths seen at every
/// collector peer. This is the simulation analogue of the unique AS paths
/// in `d_May21`.
#[derive(Debug, Clone, Default)]
pub struct PathSubstrate {
    /// All unique observed paths (`A1` = collector peer, `An` = origin).
    pub paths: Vec<AsPath>,
}

impl PathSubstrate {
    /// Compute paths from every collector peer to every origin in `g`,
    /// parallelized over origins across `threads` scoped workers.
    pub fn generate(g: &AsGraph, threads: usize) -> Self {
        let origins: Vec<NodeId> = g.node_ids().collect();
        Self::generate_for_origins(g, &origins, threads)
    }

    /// Compute paths toward the given origins only.
    pub fn generate_for_origins(g: &AsGraph, origins: &[NodeId], threads: usize) -> Self {
        let threads = threads.max(1);
        let peers = g.collector_peer_ids();
        let chunks: Vec<&[NodeId]> = origins
            .chunks(origins.len().div_ceil(threads).max(1))
            .collect();

        let mut paths: Vec<AsPath> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let peers = &peers;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        for &o in chunk {
                            let tree = RoutingTree::compute(g, o);
                            for &p in peers {
                                if let Some(path) = tree.as_path(g, p) {
                                    local.push(path);
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                paths.extend(h.join().expect("routing worker panicked"));
            }
        });

        paths.sort_unstable();
        paths.dedup();
        PathSubstrate { paths }
    }

    /// Number of unique paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no paths exist.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Mean path length (for substrate sanity checks).
    pub fn mean_len(&self) -> f64 {
        if self.paths.is_empty() {
            return 0.0;
        }
        self.paths.iter().map(|p| p.len()).sum::<usize>() as f64 / self.paths.len() as f64
    }

    /// Maximum path length.
    pub fn max_len(&self) -> usize {
        self.paths.iter().map(|p| p.len()).max().unwrap_or(0)
    }
}

/// Check a node-id path for valley-freeness in `g` (test/diagnostic
/// helper): uphill (c2p) segments, at most one peer edge, then downhill.
pub fn is_valley_free(g: &AsGraph, path: &[NodeId]) -> bool {
    use crate::graph::EdgeKind;
    // Phases: 0 = uphill allowed, 1 = after peer edge, 2 = downhill only.
    // The path here runs peer -> origin, i.e. *against* announcement flow;
    // reverse it so edges follow the announcement (origin -> peer).
    let rev: Vec<NodeId> = path.iter().rev().copied().collect();
    let mut phase = 0;
    for w in rev.windows(2) {
        let (a, b) = (w[0], w[1]);
        let kind = match g.relationship(a, b) {
            Some(k) => k,
            None => return false,
        };
        match (phase, kind) {
            (0, EdgeKind::Provider) => {}         // still climbing
            (0, EdgeKind::Peer) => phase = 2,     // single lateral step
            (0, EdgeKind::Customer) => phase = 2, // started descending
            (2, EdgeKind::Customer) => {}         // keep descending
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TopologyConfig;
    use crate::graph::{AsGraph, Relationship, Tier};

    /// Build the classic toy topology:
    ///
    /// ```text
    ///   T1a ──peer── T1b
    ///    │            │
    ///   Ta           Tb        (transit customers of T1s)
    ///    │            │
    ///   Ea           Eb        (edges)
    /// ```
    fn toy() -> (AsGraph, [NodeId; 6]) {
        let mut g = AsGraph::new();
        let t1a = g.add_node(Asn(10), Tier::Tier1);
        let t1b = g.add_node(Asn(20), Tier::Tier1);
        let ta = g.add_node(Asn(100), Tier::Transit);
        let tb = g.add_node(Asn(200), Tier::Transit);
        let ea = g.add_node(Asn(1000), Tier::Edge);
        let eb = g.add_node(Asn(2000), Tier::Edge);
        g.add_edge(t1a, t1b, Relationship::PeerToPeer);
        g.add_edge(ta, t1a, Relationship::CustomerToProvider);
        g.add_edge(tb, t1b, Relationship::CustomerToProvider);
        g.add_edge(ea, ta, Relationship::CustomerToProvider);
        g.add_edge(eb, tb, Relationship::CustomerToProvider);
        (g, [t1a, t1b, ta, tb, ea, eb])
    }

    #[test]
    fn tree_reaches_everyone_in_connected_graph() {
        let (g, ids) = toy();
        let tree = RoutingTree::compute(&g, ids[4]); // origin = Ea
        assert_eq!(tree.reachable_count(), 6);
    }

    #[test]
    fn paths_follow_valley_free_shape() {
        let (g, ids) = toy();
        let [t1a, t1b, _ta, _tb, ea, eb] = ids;
        let tree = RoutingTree::compute(&g, ea);
        // Path from Eb to Ea must cross both T1s via their peer link:
        // Eb -> Tb -> T1b -> T1a -> Ta -> Ea.
        let p = tree.node_path(eb).unwrap();
        assert_eq!(p.len(), 6);
        assert!(is_valley_free(&g, &p));
        assert!(p.contains(&t1a) && p.contains(&t1b));
    }

    #[test]
    fn customer_route_preferred_over_peer() {
        // Origin is customer of both X and Y; X and Y peer. X must route
        // via its customer (the origin), never via Y.
        let mut g = AsGraph::new();
        let x = g.add_node(Asn(1), Tier::Transit);
        let y = g.add_node(Asn(2), Tier::Transit);
        let o = g.add_node(Asn(3), Tier::Edge);
        g.add_edge(x, y, Relationship::PeerToPeer);
        g.add_edge(o, x, Relationship::CustomerToProvider);
        g.add_edge(o, y, Relationship::CustomerToProvider);
        let tree = RoutingTree::compute(&g, o);
        let rx = tree.route(x).unwrap();
        assert_eq!(rx.kind, RouteKind::Customer);
        assert_eq!(rx.next, o);
    }

    #[test]
    fn no_valley_paths_anywhere_small_topology() {
        let g = TopologyConfig::small().seed(11).build();
        // Sample some origins and check every collector-peer path.
        let origins: Vec<NodeId> = g.node_ids().step_by(97).collect();
        for &o in &origins {
            let tree = RoutingTree::compute(&g, o);
            for p in g.collector_peer_ids() {
                if let Some(path) = tree.node_path(p) {
                    assert!(is_valley_free(&g, &path), "valley in path {path:?}");
                }
            }
        }
    }

    #[test]
    fn as_path_orientation() {
        let (g, ids) = toy();
        let [.., ea, eb] = ids;
        let tree = RoutingTree::compute(&g, ea);
        let p = tree.as_path(&g, eb).unwrap();
        assert_eq!(p.peer(), Asn(2000)); // A1 = observer (Eb)
        assert_eq!(p.origin(), Asn(1000)); // An = origin (Ea)
    }

    #[test]
    fn substrate_generation_dedups_and_parallel_matches_serial() {
        let g = TopologyConfig::small().seed(12).build();
        let origins: Vec<NodeId> = g.node_ids().filter(|i| i % 29 == 0).collect();
        let serial = PathSubstrate::generate_for_origins(&g, &origins, 1);
        let parallel = PathSubstrate::generate_for_origins(&g, &origins, 4);
        assert_eq!(serial.paths, parallel.paths);
        assert!(!serial.is_empty());
        // Mean path length in a plausible Internet-like band.
        assert!(
            serial.mean_len() > 1.5 && serial.mean_len() < 8.0,
            "mean {}",
            serial.mean_len()
        );
    }

    #[test]
    fn unreachable_node_has_no_path() {
        let mut g = AsGraph::new();
        let a = g.add_node(Asn(1), Tier::Edge);
        let b = g.add_node(Asn(2), Tier::Edge); // disconnected
        let tree = RoutingTree::compute(&g, a);
        assert!(tree.node_path(b).is_none());
        assert!(tree.as_path(&g, b).is_none());
        assert_eq!(tree.reachable_count(), 1);
    }

    #[test]
    fn origin_path_is_single_hop() {
        let (g, ids) = toy();
        let tree = RoutingTree::compute(&g, ids[4]);
        let p = tree.as_path(&g, ids[4]).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equally long provider paths; lowest next-hop ASN must win.
        let mut g = AsGraph::new();
        let o = g.add_node(Asn(5), Tier::Edge);
        let p1 = g.add_node(Asn(10), Tier::Transit);
        let p2 = g.add_node(Asn(11), Tier::Transit);
        let top = g.add_node(Asn(1), Tier::Tier1);
        g.add_edge(o, p1, Relationship::CustomerToProvider);
        g.add_edge(o, p2, Relationship::CustomerToProvider);
        g.add_edge(p1, top, Relationship::CustomerToProvider);
        g.add_edge(p2, top, Relationship::CustomerToProvider);
        let tree = RoutingTree::compute(&g, o);
        // top hears from both p1 (AS10) and p2 (AS11): AS10 wins.
        assert_eq!(tree.route(top).unwrap().next, p1);
    }
}
