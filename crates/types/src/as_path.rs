//! AS paths and the sanitation transforms the paper applies to them (§4.1).
//!
//! An AS path is a sequence of segments; in practice almost always a single
//! `AS_SEQUENCE`, with occasional `AS_SET` segments produced by route
//! aggregation. The paper's pipeline:
//!
//! 1. removes `AS_SET`s,
//! 2. prepends the MRT *Peer AS Number* when it differs from `A1` (route
//!    servers at IXPs do not put themselves on the path but may touch the
//!    community attribute),
//! 3. collapses path prepending (identical consecutive ASNs).
//!
//! Index convention (paper §3.1): `A1` is the collector peer, `An` the
//! origin; *upstream* of `Ax` means smaller indices, *downstream* larger.

use crate::asn::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One AS_PATH segment (RFC 4271 §4.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathSegment {
    /// Ordered sequence of ASNs.
    Sequence(Vec<Asn>),
    /// Unordered set of ASNs (route aggregation).
    Set(Vec<Asn>),
}

impl PathSegment {
    /// ASNs in the segment, in stored order.
    pub fn asns(&self) -> &[Asn] {
        match self {
            PathSegment::Sequence(v) | PathSegment::Set(v) => v,
        }
    }

    /// Whether this is an `AS_SET` segment.
    pub fn is_set(&self) -> bool {
        matches!(self, PathSegment::Set(_))
    }
}

/// A raw AS path: one or more segments, as decoded from the wire.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RawAsPath {
    /// Segments in wire order (leftmost = most recently traversed = `A1`).
    pub segments: Vec<PathSegment>,
}

impl RawAsPath {
    /// A path consisting of a single sequence.
    pub fn from_sequence(asns: Vec<Asn>) -> Self {
        RawAsPath {
            segments: vec![PathSegment::Sequence(asns)],
        }
    }

    /// Whether any segment is an `AS_SET`.
    pub fn has_as_set(&self) -> bool {
        self.segments.iter().any(PathSegment::is_set)
    }

    /// Total number of ASNs across all segments (prepends counted).
    pub fn raw_len(&self) -> usize {
        self.segments.iter().map(|s| s.asns().len()).sum()
    }

    /// All ASNs in order, flattened across segments.
    pub fn flatten(&self) -> Vec<Asn> {
        self.segments
            .iter()
            .flat_map(|s| s.asns().iter().copied())
            .collect()
    }

    /// Apply the full sanitation pipeline and produce a clean [`AsPath`]:
    ///
    /// * drop `AS_SET` segments entirely (paper: "we remove AS_SETs"),
    /// * prepend `peer_asn` if the first ASN differs from it,
    /// * collapse consecutive duplicates (prepending),
    /// * reject empty results and paths containing AS0.
    pub fn sanitize(&self, peer_asn: Option<Asn>) -> Option<AsPath> {
        let mut asns: Vec<Asn> = self
            .segments
            .iter()
            .filter(|s| !s.is_set())
            .flat_map(|s| s.asns().iter().copied())
            .collect();
        if let Some(peer) = peer_asn {
            if asns.first() != Some(&peer) {
                asns.insert(0, peer);
            }
        }
        asns.dedup(); // collapse prepending
        if asns.is_empty() || asns.contains(&Asn::ZERO) {
            return None;
        }
        Some(AsPath { asns })
    }
}

/// A sanitized AS path: non-empty, prepending collapsed, no sets.
///
/// This is the `path` half of the inference input tuples. Indexing follows
/// the paper: [`AsPath::at`]`(1)` is the collector peer `A1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsPath {
    asns: Vec<Asn>,
}

impl AsPath {
    /// Construct directly from an ordered ASN list, applying prepend
    /// collapse. Returns `None` if empty after cleaning.
    pub fn new(mut asns: Vec<Asn>) -> Option<Self> {
        asns.dedup();
        if asns.is_empty() {
            None
        } else {
            Some(AsPath { asns })
        }
    }

    /// Path length `n` (number of distinct hops after collapse).
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// Paths are never empty; provided for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// 1-based access following the paper's `A1..An` convention.
    ///
    /// Returns `None` when `index` is 0 or beyond the path end.
    pub fn at(&self, index: usize) -> Option<Asn> {
        if index == 0 {
            None
        } else {
            self.asns.get(index - 1).copied()
        }
    }

    /// The collector peer `A1`.
    pub fn peer(&self) -> Asn {
        self.asns[0]
    }

    /// The origin `An`.
    pub fn origin(&self) -> Asn {
        *self.asns.last().expect("AsPath is non-empty")
    }

    /// All hops in order `A1..An`.
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }

    /// Whether `asn` appears anywhere on the path.
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns.contains(&asn)
    }

    /// 1-based position of the first occurrence of `asn`.
    pub fn position(&self, asn: Asn) -> Option<usize> {
        self.asns.iter().position(|&a| a == asn).map(|i| i + 1)
    }

    /// Upstream ASes of the AS at 1-based `index`: `A1..A(index-1)`.
    pub fn upstream_of(&self, index: usize) -> &[Asn] {
        &self.asns[..index.saturating_sub(1).min(self.asns.len())]
    }

    /// Downstream ASes of the AS at 1-based `index`: `A(index+1)..An`.
    pub fn downstream_of(&self, index: usize) -> &[Asn] {
        if index >= self.asns.len() {
            &[]
        } else {
            &self.asns[index..]
        }
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.asns {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", a.0)?;
            first = false;
        }
        Ok(())
    }
}

/// Convenience: build a sanitized path from raw u32 ASNs (mostly for tests
/// and examples).
pub fn path(asns: &[u32]) -> AsPath {
    AsPath::new(asns.iter().map(|&v| Asn(v)).collect()).expect("non-empty path")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_strips_as_sets() {
        let raw = RawAsPath {
            segments: vec![
                PathSegment::Sequence(vec![Asn(1), Asn(2)]),
                PathSegment::Set(vec![Asn(3), Asn(4)]),
                PathSegment::Sequence(vec![Asn(5)]),
            ],
        };
        let p = raw.sanitize(None).unwrap();
        assert_eq!(p.asns(), &[Asn(1), Asn(2), Asn(5)]);
    }

    #[test]
    fn sanitize_prepends_peer_when_missing() {
        let raw = RawAsPath::from_sequence(vec![Asn(2), Asn(3)]);
        let p = raw.sanitize(Some(Asn(99))).unwrap();
        assert_eq!(p.peer(), Asn(99));
        assert_eq!(p.len(), 3);
        // When A1 already equals the peer, nothing is added.
        let q = RawAsPath::from_sequence(vec![Asn(2), Asn(3)])
            .sanitize(Some(Asn(2)))
            .unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn sanitize_collapses_prepending() {
        let raw = RawAsPath::from_sequence(vec![Asn(1), Asn(1), Asn(1), Asn(2), Asn(2), Asn(3)]);
        let p = raw.sanitize(None).unwrap();
        assert_eq!(p.asns(), &[Asn(1), Asn(2), Asn(3)]);
    }

    #[test]
    fn sanitize_rejects_as0_and_empty() {
        assert!(RawAsPath::from_sequence(vec![Asn(1), Asn(0)])
            .sanitize(None)
            .is_none());
        assert!(RawAsPath { segments: vec![] }.sanitize(None).is_none());
        assert!(RawAsPath {
            segments: vec![PathSegment::Set(vec![Asn(1)])]
        }
        .sanitize(None)
        .is_none());
    }

    #[test]
    fn one_based_indexing() {
        let p = path(&[10, 20, 30]);
        assert_eq!(p.at(0), None);
        assert_eq!(p.at(1), Some(Asn(10)));
        assert_eq!(p.at(3), Some(Asn(30)));
        assert_eq!(p.at(4), None);
        assert_eq!(p.peer(), Asn(10));
        assert_eq!(p.origin(), Asn(30));
    }

    #[test]
    fn upstream_downstream_slices() {
        let p = path(&[10, 20, 30, 40]);
        assert_eq!(p.upstream_of(1), &[] as &[Asn]);
        assert_eq!(p.upstream_of(3), &[Asn(10), Asn(20)]);
        assert_eq!(p.downstream_of(3), &[Asn(40)]);
        assert_eq!(p.downstream_of(4), &[] as &[Asn]);
        assert_eq!(p.downstream_of(1), &[Asn(20), Asn(30), Asn(40)]);
    }

    #[test]
    fn position_is_one_based() {
        let p = path(&[10, 20, 30]);
        assert_eq!(p.position(Asn(10)), Some(1));
        assert_eq!(p.position(Asn(30)), Some(3));
        assert_eq!(p.position(Asn(77)), None);
    }

    #[test]
    fn display_space_separated() {
        assert_eq!(path(&[64496, 3356, 174]).to_string(), "64496 3356 174");
    }

    #[test]
    fn new_collapses_duplicates() {
        let p = AsPath::new(vec![Asn(1), Asn(1), Asn(2)]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(AsPath::new(vec![]).is_none());
    }

    #[test]
    fn raw_len_counts_prepends() {
        let raw = RawAsPath::from_sequence(vec![Asn(1), Asn(1), Asn(2)]);
        assert_eq!(raw.raw_len(), 3);
        assert_eq!(raw.flatten().len(), 3);
    }
}
