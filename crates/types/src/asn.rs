//! Autonomous System Numbers (ASNs).
//!
//! ASNs were originally 16-bit identifiers (RFC 4271); RFC 6793 expanded the
//! space to 32 bits. Several ranges are reserved by IANA and must never
//! appear as the source of a public routing announcement. The IMC'21
//! community-usage paper relies on distinguishing *public* (allocatable)
//! ASNs from *private/reserved* ones when grouping communities into the
//! `peer` / `foreign` / `stray` / `private` source classes (paper §3.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An Autonomous System Number.
///
/// Stored uniformly as a `u32`; 16-bit ASNs occupy the low half of the
/// space. `Asn` is `Copy`, ordered, and hashable so it can key counter maps
/// in the inference engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

/// AS_TRANS (RFC 6793): substituted for 32-bit ASNs on 2-byte-only sessions.
pub const AS_TRANS: Asn = Asn(23456);

impl Asn {
    /// The reserved ASN 0 (RFC 7607): must never be routed.
    pub const ZERO: Asn = Asn(0);

    /// Construct an ASN from a raw u32 value.
    #[inline]
    pub const fn new(value: u32) -> Self {
        Asn(value)
    }

    /// The raw numeric value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this ASN fits in the original 16-bit space.
    #[inline]
    pub const fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// Whether this ASN requires the 32-bit extension (RFC 6793).
    ///
    /// The paper's Table 1 reports ~31k "32-bit ASes" per dataset; this
    /// predicate implements that split.
    #[inline]
    pub const fn is_32bit_only(self) -> bool {
        self.0 > u16::MAX as u32
    }

    /// Whether the ASN falls in an IANA-reserved or private range and is
    /// therefore *not* a public ASN.
    ///
    /// Ranges (per IANA autonomous-system-numbers registry):
    /// * `0` — reserved (RFC 7607)
    /// * `23456` — AS_TRANS (RFC 6793)
    /// * `64496..=64511` — documentation (RFC 5398)
    /// * `64512..=65534` — private use (RFC 6996)
    /// * `65535` — reserved (RFC 7300)
    /// * `65536..=65551` — documentation (RFC 5398)
    /// * `4200000000..=4294967294` — private use (RFC 6996)
    /// * `4294967295` — reserved (RFC 7300)
    pub const fn is_reserved_or_private(self) -> bool {
        matches!(
            self.0,
            0 | 23456
                | 64496..=64511
                | 64512..=65534
                | 65535
                | 65536..=65551
                | 4_200_000_000..=4_294_967_294
                | 4_294_967_295
        )
    }

    /// Whether the ASN is in a range IANA can allocate to operators.
    ///
    /// Note: *allocatable* is necessary but not sufficient for a community
    /// upper field to be meaningful — the registry
    /// ([`crate::registry::AsnRegistry`]) additionally tracks whether the
    /// specific number is currently allocated.
    #[inline]
    pub const fn is_public_range(self) -> bool {
        !self.is_reserved_or_private()
    }

    /// Render in `asdot+`-free plain notation (the common convention for
    /// collector data and the paper's examples).
    pub fn as_plain(self) -> String {
        self.0.to_string()
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<u16> for Asn {
    fn from(v: u16) -> Self {
        Asn(v as u32)
    }
}

impl From<Asn> for u32 {
    fn from(a: Asn) -> u32 {
        a.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl std::str::FromStr for Asn {
    type Err = std::num::ParseIntError;

    /// Parse either `1234` or `AS1234`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        s.parse::<u32>().map(Asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_bit_split() {
        assert!(Asn(65535).is_16bit());
        assert!(!Asn(65536).is_16bit());
        assert!(Asn(65536).is_32bit_only());
        assert!(!Asn(3356).is_32bit_only());
    }

    #[test]
    fn reserved_ranges() {
        for v in [
            0u32, 23456, 64496, 64511, 64512, 65000, 65534, 65535, 65536, 65551,
        ] {
            assert!(
                Asn(v).is_reserved_or_private(),
                "AS{v} should be reserved/private"
            );
        }
        assert!(Asn(4_200_000_000).is_reserved_or_private());
        assert!(Asn(4_294_967_295).is_reserved_or_private());
    }

    #[test]
    fn public_ranges() {
        for v in [
            1u32,
            3356,
            23455,
            23457,
            64495,
            65552,
            131072,
            4_199_999_999,
        ] {
            assert!(Asn(v).is_public_range(), "AS{v} should be public-range");
        }
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(Asn(3356).to_string(), "AS3356");
        assert_eq!("AS3356".parse::<Asn>().unwrap(), Asn(3356));
        assert_eq!("3356".parse::<Asn>().unwrap(), Asn(3356));
        assert!("ASx".parse::<Asn>().is_err());
    }

    #[test]
    fn conversions() {
        let a: Asn = 7018u16.into();
        assert_eq!(u32::from(a), 7018);
        let b: Asn = 400_000u32.into();
        assert!(b.is_32bit_only());
    }

    #[test]
    fn as_trans_is_not_public() {
        assert!(AS_TRANS.is_reserved_or_private());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Asn(2) < Asn(10));
        let mut v = vec![Asn(30), Asn(1), Asn(7)];
        v.sort();
        assert_eq!(v, vec![Asn(1), Asn(7), Asn(30)]);
    }
}
