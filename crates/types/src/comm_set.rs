//! Community sets: the `comm` half of the paper's `(path, comm)` tuples.
//!
//! A community attribute carries an unordered set of communities. The
//! inference algorithm's hot operation is *"does this set contain any
//! community whose upper field is ASN `A`?"* (`A:*` membership, paper §5.3),
//! so the set keeps its elements sorted and additionally exposes an
//! upper-field membership test that is O(log n).

use crate::asn::Asn;
use crate::community::AnyCommunity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sorted, deduplicated set of communities.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CommunitySet {
    items: Vec<AnyCommunity>,
}

impl CommunitySet {
    /// The empty set (a *silent-and-cleaner* output, in mental-model terms).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of communities in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert a community, keeping sortedness. Returns `true` if new.
    pub fn insert(&mut self, c: AnyCommunity) -> bool {
        match self.items.binary_search(&c) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, c);
                true
            }
        }
    }

    /// Exact membership.
    pub fn contains(&self, c: &AnyCommunity) -> bool {
        self.items.binary_search(c).is_ok()
    }

    /// The paper's `A:* ∈ comm` test: does any community carry upper field
    /// `asn`? (Both variants are considered, per §3.2.)
    ///
    /// O(log n): the derived [`AnyCommunity`] ordering sorts every regular
    /// community before every large one, and orders each variant by its
    /// upper field first, so one binary probe per variant suffices — seek
    /// the smallest community with upper field `asn` and check whether the
    /// element landed on actually carries it.
    pub fn contains_upper(&self, asn: Asn) -> bool {
        if let Ok(upper) = u16::try_from(asn.0) {
            let bound = AnyCommunity::Regular(crate::community::Community::new(upper, 0));
            let i = self.items.partition_point(|c| *c < bound);
            if matches!(self.items.get(i), Some(AnyCommunity::Regular(c)) if c.upper() == upper) {
                return true;
            }
        }
        let bound = AnyCommunity::Large(crate::community::LargeCommunity::new(asn.0, 0, 0));
        let i = self.items.partition_point(|c| *c < bound);
        matches!(self.items.get(i), Some(AnyCommunity::Large(c)) if c.global_admin == asn.0)
    }

    /// All communities whose upper field is `asn`.
    pub fn with_upper(&self, asn: Asn) -> impl Iterator<Item = &AnyCommunity> {
        self.items.iter().filter(move |c| c.upper_field() == asn)
    }

    /// Union, consuming neither operand — `output(A) = tagging(A) ∪
    /// forwarding(A, input)` in the mental model (§3.3.2).
    pub fn union(&self, other: &CommunitySet) -> CommunitySet {
        // Merge two sorted vecs.
        let mut out = Vec::with_capacity(self.items.len() + other.items.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        out.extend_from_slice(&other.items[j..]);
        CommunitySet { items: out }
    }

    /// In-place union: grows `self.items` by exactly the number of new
    /// elements and merges backwards within that one buffer, so no scratch
    /// vector is allocated (unlike [`CommunitySet::union`]).
    pub fn extend_union(&mut self, other: &CommunitySet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.items.clone_from(&other.items);
            return;
        }
        // First walk: count elements of `other` absent from `self`.
        let (mut i, mut j, mut fresh) = (0usize, 0usize, 0usize);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => {
                    fresh += 1;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        fresh += other.items.len() - j;
        if fresh == 0 {
            return;
        }
        // Second walk: merge from the back into the grown tail. Elements
        // of `self` below the final read cursor are already in place.
        let old = self.items.len();
        self.items.resize(old + fresh, other.items[0]);
        let (mut r, mut s, mut w) = (old, other.items.len(), old + fresh);
        while s > 0 {
            w -= 1;
            if r > 0 && self.items[r - 1] > other.items[s - 1] {
                self.items[w] = self.items[r - 1];
                r -= 1;
            } else {
                if r > 0 && self.items[r - 1] == other.items[s - 1] {
                    r -= 1;
                }
                self.items[w] = other.items[s - 1];
                s -= 1;
            }
        }
    }

    /// Remove every community for which `pred` returns false.
    pub fn retain<F: FnMut(&AnyCommunity) -> bool>(&mut self, pred: F) {
        self.items.retain(pred);
    }

    /// Drop all communities (what a *cleaner* does on the forwarding path).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterate in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &AnyCommunity> {
        self.items.iter()
    }

    /// Count of large-variant communities (Table 1's `incl. large` rows).
    pub fn large_count(&self) -> usize {
        self.items.iter().filter(|c| c.is_large()).count()
    }

    /// Distinct upper fields present in the set.
    pub fn upper_fields(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.items.iter().map(|c| c.upper_field()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl FromIterator<AnyCommunity> for CommunitySet {
    fn from_iter<I: IntoIterator<Item = AnyCommunity>>(iter: I) -> Self {
        let mut items: Vec<AnyCommunity> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        CommunitySet { items }
    }
}

impl<'a> IntoIterator for &'a CommunitySet {
    type Item = &'a AnyCommunity;
    type IntoIter = std::slice::Iter<'a, AnyCommunity>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl fmt::Display for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        for c in &self.items {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::AnyCommunity as C;

    #[test]
    fn insert_dedups_and_sorts() {
        let mut s = CommunitySet::new();
        assert!(s.insert(C::regular(30, 1)));
        assert!(s.insert(C::regular(10, 1)));
        assert!(!s.insert(C::regular(30, 1)));
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().cloned().collect();
        assert_eq!(v, vec![C::regular(10, 1), C::regular(30, 1)]);
    }

    #[test]
    fn from_iter_dedups() {
        let s = CommunitySet::from_iter([C::regular(1, 1), C::regular(1, 1), C::regular(2, 2)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn upper_membership_covers_both_variants() {
        let s = CommunitySet::from_iter([C::regular(3356, 1), C::large(200_000, 5, 6)]);
        assert!(s.contains_upper(Asn(3356)));
        assert!(s.contains_upper(Asn(200_000)));
        assert!(!s.contains_upper(Asn(1)));
    }

    #[test]
    fn union_is_sorted_and_deduped() {
        let a = CommunitySet::from_iter([C::regular(1, 1), C::regular(3, 3)]);
        let b = CommunitySet::from_iter([C::regular(2, 2), C::regular(3, 3)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(&C::regular(1, 1)));
        assert!(u.contains(&C::regular(2, 2)));
        assert!(u.contains(&C::regular(3, 3)));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = CommunitySet::from_iter([C::regular(1, 1)]);
        assert_eq!(a.union(&CommunitySet::new()), a);
        assert_eq!(CommunitySet::new().union(&a), a);
    }

    #[test]
    fn clear_models_cleaner() {
        let mut s = CommunitySet::from_iter([C::regular(1, 1), C::large(9, 9, 9)]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "∅");
    }

    #[test]
    fn large_count() {
        let s = CommunitySet::from_iter([C::regular(1, 1), C::large(9, 9, 9), C::large(9, 9, 10)]);
        assert_eq!(s.large_count(), 2);
    }

    #[test]
    fn upper_fields_dedup() {
        let s = CommunitySet::from_iter([C::regular(5, 1), C::regular(5, 2), C::regular(7, 1)]);
        assert_eq!(s.upper_fields(), vec![Asn(5), Asn(7)]);
    }

    #[test]
    fn retain_filters() {
        let mut s = CommunitySet::from_iter([C::regular(5, 1), C::regular(7, 1)]);
        s.retain(|c| c.upper_field() == Asn(5));
        assert_eq!(s.len(), 1);
        assert!(s.contains_upper(Asn(5)));
    }

    #[test]
    fn contains_upper_probes_both_regions() {
        // Many uppers on both sides of the probe target, both variants.
        let s = CommunitySet::from_iter([
            C::regular(10, 5),
            C::regular(10, 9),
            C::regular(3356, 0),
            C::regular(3356, 2001),
            C::regular(65000, 1),
            C::large(10, 0, 0),
            C::large(200_000, 5, 6),
            C::large(300_000, 0, 1),
        ]);
        for hit in [10u32, 3356, 65000, 200_000, 300_000] {
            assert!(s.contains_upper(Asn(hit)), "AS{hit} should match");
        }
        for miss in [
            9u32,
            11,
            3355,
            3357,
            64999,
            65001,
            199_999,
            200_001,
            4_000_000_000,
        ] {
            assert!(!s.contains_upper(Asn(miss)), "AS{miss} should not match");
        }
        assert!(!CommunitySet::new().contains_upper(Asn(10)));
    }

    #[test]
    fn extend_union_matches_union() {
        let cases: &[(&[AnyCommunity], &[AnyCommunity])] = &[
            (&[], &[]),
            (&[C::regular(1, 1)], &[]),
            (&[], &[C::regular(1, 1)]),
            (
                &[C::regular(1, 1), C::regular(3, 3)],
                &[C::regular(2, 2), C::regular(3, 3)],
            ),
            (&[C::regular(5, 5)], &[C::regular(1, 1), C::regular(9, 9)]),
            (&[C::large(9, 9, 9)], &[C::regular(1, 1), C::large(9, 9, 9)]),
            (
                &[C::regular(1, 1), C::regular(2, 2)],
                &[C::regular(1, 1), C::regular(2, 2)],
            ),
        ];
        for (a, b) in cases {
            let left = CommunitySet::from_iter(a.iter().copied());
            let right = CommunitySet::from_iter(b.iter().copied());
            let mut merged = left.clone();
            merged.extend_union(&right);
            assert_eq!(merged, left.union(&right), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn display_format() {
        let s = CommunitySet::from_iter([C::regular(3356, 1), C::regular(174, 2)]);
        assert_eq!(s.to_string(), "174:2 3356:1");
    }
}
