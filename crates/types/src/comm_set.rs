//! Community sets: the `comm` half of the paper's `(path, comm)` tuples.
//!
//! A community attribute carries an unordered set of communities. The
//! inference algorithm's hot operation is *"does this set contain any
//! community whose upper field is ASN `A`?"* (`A:*` membership, paper §5.3),
//! so the set keeps its elements sorted and additionally exposes an
//! upper-field membership test that is O(log n).

use crate::asn::Asn;
use crate::community::AnyCommunity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sorted, deduplicated set of communities.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CommunitySet {
    items: Vec<AnyCommunity>,
}

impl CommunitySet {
    /// The empty set (a *silent-and-cleaner* output, in mental-model terms).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of communities in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert a community, keeping sortedness. Returns `true` if new.
    pub fn insert(&mut self, c: AnyCommunity) -> bool {
        match self.items.binary_search(&c) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, c);
                true
            }
        }
    }

    /// Exact membership.
    pub fn contains(&self, c: &AnyCommunity) -> bool {
        self.items.binary_search(c).is_ok()
    }

    /// The paper's `A:* ∈ comm` test: does any community carry upper field
    /// `asn`? (Both variants are considered, per §3.2.)
    pub fn contains_upper(&self, asn: Asn) -> bool {
        self.items.iter().any(|c| c.upper_field() == asn)
    }

    /// All communities whose upper field is `asn`.
    pub fn with_upper(&self, asn: Asn) -> impl Iterator<Item = &AnyCommunity> {
        self.items.iter().filter(move |c| c.upper_field() == asn)
    }

    /// Union, consuming neither operand — `output(A) = tagging(A) ∪
    /// forwarding(A, input)` in the mental model (§3.3.2).
    pub fn union(&self, other: &CommunitySet) -> CommunitySet {
        // Merge two sorted vecs.
        let mut out = Vec::with_capacity(self.items.len() + other.items.len());
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.items[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.items[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.items[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.items[i..]);
        out.extend_from_slice(&other.items[j..]);
        CommunitySet { items: out }
    }

    /// In-place union.
    pub fn extend_union(&mut self, other: &CommunitySet) {
        if other.is_empty() {
            return;
        }
        *self = self.union(other);
    }

    /// Remove every community for which `pred` returns false.
    pub fn retain<F: FnMut(&AnyCommunity) -> bool>(&mut self, pred: F) {
        self.items.retain(pred);
    }

    /// Drop all communities (what a *cleaner* does on the forwarding path).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterate in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &AnyCommunity> {
        self.items.iter()
    }

    /// Count of large-variant communities (Table 1's `incl. large` rows).
    pub fn large_count(&self) -> usize {
        self.items.iter().filter(|c| c.is_large()).count()
    }

    /// Distinct upper fields present in the set.
    pub fn upper_fields(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.items.iter().map(|c| c.upper_field()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl FromIterator<AnyCommunity> for CommunitySet {
    fn from_iter<I: IntoIterator<Item = AnyCommunity>>(iter: I) -> Self {
        let mut items: Vec<AnyCommunity> = iter.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        CommunitySet { items }
    }
}

impl<'a> IntoIterator for &'a CommunitySet {
    type Item = &'a AnyCommunity;
    type IntoIter = std::slice::Iter<'a, AnyCommunity>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl fmt::Display for CommunitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let mut first = true;
        for c in &self.items {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::AnyCommunity as C;

    #[test]
    fn insert_dedups_and_sorts() {
        let mut s = CommunitySet::new();
        assert!(s.insert(C::regular(30, 1)));
        assert!(s.insert(C::regular(10, 1)));
        assert!(!s.insert(C::regular(30, 1)));
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().cloned().collect();
        assert_eq!(v, vec![C::regular(10, 1), C::regular(30, 1)]);
    }

    #[test]
    fn from_iter_dedups() {
        let s = CommunitySet::from_iter([C::regular(1, 1), C::regular(1, 1), C::regular(2, 2)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn upper_membership_covers_both_variants() {
        let s = CommunitySet::from_iter([C::regular(3356, 1), C::large(200_000, 5, 6)]);
        assert!(s.contains_upper(Asn(3356)));
        assert!(s.contains_upper(Asn(200_000)));
        assert!(!s.contains_upper(Asn(1)));
    }

    #[test]
    fn union_is_sorted_and_deduped() {
        let a = CommunitySet::from_iter([C::regular(1, 1), C::regular(3, 3)]);
        let b = CommunitySet::from_iter([C::regular(2, 2), C::regular(3, 3)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(&C::regular(1, 1)));
        assert!(u.contains(&C::regular(2, 2)));
        assert!(u.contains(&C::regular(3, 3)));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = CommunitySet::from_iter([C::regular(1, 1)]);
        assert_eq!(a.union(&CommunitySet::new()), a);
        assert_eq!(CommunitySet::new().union(&a), a);
    }

    #[test]
    fn clear_models_cleaner() {
        let mut s = CommunitySet::from_iter([C::regular(1, 1), C::large(9, 9, 9)]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.to_string(), "∅");
    }

    #[test]
    fn large_count() {
        let s = CommunitySet::from_iter([C::regular(1, 1), C::large(9, 9, 9), C::large(9, 9, 10)]);
        assert_eq!(s.large_count(), 2);
    }

    #[test]
    fn upper_fields_dedup() {
        let s = CommunitySet::from_iter([C::regular(5, 1), C::regular(5, 2), C::regular(7, 1)]);
        assert_eq!(s.upper_fields(), vec![Asn(5), Asn(7)]);
    }

    #[test]
    fn retain_filters() {
        let mut s = CommunitySet::from_iter([C::regular(5, 1), C::regular(7, 1)]);
        s.retain(|c| c.upper_field() == Asn(5));
        assert_eq!(s.len(), 1);
        assert!(s.contains_upper(Asn(5)));
    }

    #[test]
    fn display_format() {
        let s = CommunitySet::from_iter([C::regular(3356, 1), C::regular(174, 2)]);
        assert_eq!(s.to_string(), "174:2 3356:1");
    }
}
