//! BGP community values.
//!
//! Two variants matter for this work (paper §3.2):
//!
//! * **Regular communities** (RFC 1997): a 32-bit value written `α:β` where
//!   by convention `α` is the 16-bit ASN that defines the meaning of `β`.
//! * **Large communities** (RFC 8092): `α:β:γ` with a 32-bit `α` (the
//!   *Global Administrator*) and two further 32-bit fields, introduced so
//!   32-bit ASes can follow the same convention.
//!
//! The paper calls `α` the **upper field** in both variants; the inference
//! algorithm assumes (for `peer` and `foreign` communities) that the upper
//! field names the AS that set the community.

use crate::asn::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A regular (RFC 1997) community, `α:β` packed into 32 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Community(pub u32);

impl Community {
    /// Well-known NO_EXPORT (RFC 1997).
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// Well-known NO_ADVERTISE (RFC 1997).
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
    /// Well-known NO_EXPORT_SUBCONFED (RFC 1997).
    pub const NO_EXPORT_SUBCONFED: Community = Community(0xFFFF_FF03);
    /// BLACKHOLE (RFC 7999).
    pub const BLACKHOLE: Community = Community(0xFFFF_029A);
    /// GRACEFUL_SHUTDOWN (RFC 8326).
    pub const GRACEFUL_SHUTDOWN: Community = Community(0xFFFF_0000);

    /// Build from upper (`α`) and lower (`β`) 16-bit halves.
    pub const fn new(upper: u16, lower: u16) -> Self {
        Community(((upper as u32) << 16) | lower as u32)
    }

    /// The upper field `α` — conventionally the defining ASN.
    pub const fn upper(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The lower field `β` — the operator-defined value.
    pub const fn lower(self) -> u16 {
        self.0 as u16
    }

    /// Whether this is a well-known community in `0xFFFF0000..=0xFFFFFFFF`
    /// (RFC 1997 reserves `0xFFFF....`; `0x0000....` is also reserved).
    pub const fn is_well_known(self) -> bool {
        self.upper() == 0xFFFF || self.upper() == 0x0000
    }

    /// Raw 32-bit wire value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.upper(), self.lower())
    }
}

impl std::str::FromStr for Community {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, b) = s
            .split_once(':')
            .ok_or_else(|| format!("missing ':' in {s:?}"))?;
        let upper: u16 = a.parse().map_err(|e| format!("bad upper: {e}"))?;
        let lower: u16 = b.parse().map_err(|e| format!("bad lower: {e}"))?;
        Ok(Community::new(upper, lower))
    }
}

/// A large (RFC 8092) community, `α:β:γ`, three 32-bit fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LargeCommunity {
    /// Global Administrator — conventionally the defining ASN (32-bit).
    pub global_admin: u32,
    /// First local data part.
    pub local1: u32,
    /// Second local data part.
    pub local2: u32,
}

impl LargeCommunity {
    /// Build from the three fields.
    pub const fn new(global_admin: u32, local1: u32, local2: u32) -> Self {
        LargeCommunity {
            global_admin,
            local1,
            local2,
        }
    }
}

impl fmt::Display for LargeCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.global_admin, self.local1, self.local2)
    }
}

impl std::str::FromStr for LargeCommunity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split(':');
        let mut next = |name: &str| -> Result<u32, String> {
            it.next()
                .ok_or_else(|| format!("missing {name} in {s:?}"))?
                .parse::<u32>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        let ga = next("global_admin")?;
        let l1 = next("local1")?;
        let l2 = next("local2")?;
        if it.next().is_some() {
            return Err(format!("too many fields in {s:?}"));
        }
        Ok(LargeCommunity::new(ga, l1, l2))
    }
}

/// Either community variant, unified behind the paper's *upper field*
/// abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AnyCommunity {
    /// Regular RFC 1997 community.
    Regular(Community),
    /// Large RFC 8092 community.
    Large(LargeCommunity),
}

impl AnyCommunity {
    /// The upper field as an ASN: the 16-bit `α` for regular communities,
    /// the 32-bit Global Administrator for large ones.
    pub fn upper_field(&self) -> Asn {
        match self {
            AnyCommunity::Regular(c) => Asn(c.upper() as u32),
            AnyCommunity::Large(c) => Asn(c.global_admin),
        }
    }

    /// Whether this is the large variant.
    pub fn is_large(&self) -> bool {
        matches!(self, AnyCommunity::Large(_))
    }

    /// Whether this is a reserved well-known value (regular variant only —
    /// RFC 8092 defines no well-known large communities).
    pub fn is_well_known(&self) -> bool {
        match self {
            AnyCommunity::Regular(c) => c.is_well_known(),
            AnyCommunity::Large(_) => false,
        }
    }

    /// Convenience constructor: a regular community `upper:lower`.
    pub fn regular(upper: u16, lower: u16) -> Self {
        AnyCommunity::Regular(Community::new(upper, lower))
    }

    /// Convenience constructor: a large community `ga:l1:l2`.
    pub fn large(ga: u32, l1: u32, l2: u32) -> Self {
        AnyCommunity::Large(LargeCommunity::new(ga, l1, l2))
    }

    /// The community an AS would use to tag with its own ASN in the upper
    /// field: regular `asn:value` when the ASN fits 16 bits, large
    /// `asn:value:0` otherwise. This mirrors the convention the paper
    /// assumes taggers follow.
    pub fn tag_for(asn: Asn, value: u32) -> Self {
        if asn.is_16bit() {
            AnyCommunity::Regular(Community::new(asn.0 as u16, value as u16))
        } else {
            AnyCommunity::Large(LargeCommunity::new(asn.0, value, 0))
        }
    }
}

impl From<Community> for AnyCommunity {
    fn from(c: Community) -> Self {
        AnyCommunity::Regular(c)
    }
}

impl From<LargeCommunity> for AnyCommunity {
    fn from(c: LargeCommunity) -> Self {
        AnyCommunity::Large(c)
    }
}

impl fmt::Display for AnyCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyCommunity::Regular(c) => c.fmt(f),
            AnyCommunity::Large(c) => c.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_pack_unpack() {
        let c = Community::new(3356, 123);
        assert_eq!(c.upper(), 3356);
        assert_eq!(c.lower(), 123);
        assert_eq!(c.raw(), (3356u32 << 16) | 123);
    }

    #[test]
    fn well_known_values() {
        assert_eq!(Community::NO_EXPORT.to_string(), "65535:65281");
        assert!(Community::NO_EXPORT.is_well_known());
        assert!(Community::BLACKHOLE.is_well_known());
        assert!(Community::new(0, 666).is_well_known());
        assert!(!Community::new(3356, 666).is_well_known());
    }

    #[test]
    fn display_and_parse_regular() {
        let c: Community = "3356:2001".parse().unwrap();
        assert_eq!(c, Community::new(3356, 2001));
        assert_eq!(c.to_string(), "3356:2001");
        assert!("3356".parse::<Community>().is_err());
        assert!("99999:1".parse::<Community>().is_err());
    }

    #[test]
    fn display_and_parse_large() {
        let c: LargeCommunity = "196615:100:1".parse().unwrap();
        assert_eq!(c, LargeCommunity::new(196615, 100, 1));
        assert_eq!(c.to_string(), "196615:100:1");
        assert!("1:2".parse::<LargeCommunity>().is_err());
        assert!("1:2:3:4".parse::<LargeCommunity>().is_err());
    }

    #[test]
    fn upper_field_unification() {
        assert_eq!(AnyCommunity::regular(3356, 1).upper_field(), Asn(3356));
        assert_eq!(AnyCommunity::large(196615, 1, 2).upper_field(), Asn(196615));
    }

    #[test]
    fn tag_for_picks_variant_by_asn_width() {
        let small = AnyCommunity::tag_for(Asn(3356), 7);
        assert!(!small.is_large());
        assert_eq!(small.upper_field(), Asn(3356));
        let big = AnyCommunity::tag_for(Asn(200_000), 7);
        assert!(big.is_large());
        assert_eq!(big.upper_field(), Asn(200_000));
    }

    #[test]
    fn large_is_never_well_known() {
        assert!(!AnyCommunity::large(0xFFFF, 1, 2).is_well_known());
    }

    #[test]
    fn ordering_regular_then_large() {
        let r = AnyCommunity::regular(1, 1);
        let l = AnyCommunity::large(1, 1, 1);
        assert!(r < l); // enum variant order: Regular < Large
    }
}
