//! ASN interning: dense `u32` ids for hot-path indexed storage.
//!
//! The inference hot loop is dominated by per-AS lookups — counters,
//! phase predicates, tag evidence. Keying those by [`Asn`] forces a hash
//! per touch; interning every ASN once into a dense id space turns each
//! of them into a plain array index and makes per-AS tables mergeable by
//! slice addition. The interner is the id authority shared by the
//! compiled tuple store and the dense counter store in `bgp-infer`.

use crate::asn::Asn;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A multiply-xorshift hasher for `Asn`-keyed maps.
///
/// Hashing happens once per path hop on ingest paths, so the default
/// SipHash dominates; ASN keys are 32-bit values needing good avalanche,
/// not cryptographic strength. AS_PATH contents *are*
/// remote-attacker-influenced, though, so the companion
/// [`AsnBuildHasher`] seeds every map with per-process entropy — bucket
/// collisions cannot be precomputed offline.
#[derive(Debug, Clone, Default)]
pub struct AsnHasher(u64);

impl Hasher for AsnHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback path (FNV-1a); `Asn` hashing always takes `write_u32`.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        let mut x = (self.0 ^ v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        self.0 = x;
    }
}

/// Per-process random seed for [`AsnBuildHasher`]: wall-clock nanos
/// mixed with ASLR-randomized addresses. Computed once.
fn process_seed() -> u64 {
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SEED.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let heap = Box::into_raw(Box::new(0u8));
        let addr = heap as u64;
        // SAFETY: freshly boxed above, never shared.
        drop(unsafe { Box::from_raw(heap) });
        let stack_probe = &t as *const u64 as u64;
        let mut x = t ^ addr.rotate_left(32) ^ stack_probe.rotate_left(17);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    })
}

/// Builds [`AsnHasher`]s whose initial state carries per-process random
/// entropy, so an attacker who controls AS_PATH contents cannot craft
/// offline-computed bucket-collision sets (hash-flooding DoS) against
/// the interner's reverse map or the counter stores.
#[derive(Debug, Clone)]
pub struct AsnBuildHasher(u64);

impl Default for AsnBuildHasher {
    fn default() -> Self {
        AsnBuildHasher(process_seed())
    }
}

impl std::hash::BuildHasher for AsnBuildHasher {
    type Hasher = AsnHasher;

    fn build_hasher(&self) -> AsnHasher {
        AsnHasher(self.0)
    }
}

/// A dense id assigned by [`AsnInterner::intern`].
///
/// Ids are assigned in first-seen order starting at 0 and are only
/// meaningful relative to the interner that produced them.
pub type AsnId = u32;

/// Bidirectional ASN ⇄ dense-id map.
///
/// ```
/// use bgp_types::prelude::*;
///
/// let mut interner = AsnInterner::new();
/// let a = interner.intern(Asn(3356));
/// let b = interner.intern(Asn(174));
/// assert_eq!(interner.intern(Asn(3356)), a); // stable
/// assert_ne!(a, b);
/// assert_eq!(interner.resolve(b), Asn(174));
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AsnInterner {
    /// Direct-indexed id table for 16-bit ASNs (the vast majority of
    /// path hops): `small[asn] == VACANT` until assigned. Allocated
    /// lazily on the first 16-bit intern (256 KiB).
    small: Vec<AsnId>,
    /// 32-bit-only ASNs go through the hash map.
    ids: HashMap<Asn, AsnId, AsnBuildHasher>,
    asns: Vec<Asn>,
}

/// Sentinel for "no id assigned" in the direct 16-bit table. Ids are
/// dense from 0, so the sentinel is unreachable as a real id.
const VACANT: AsnId = AsnId::MAX;

impl AsnInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size for roughly `n` distinct ASNs (avoids rehash churn in
    /// bulk compiles).
    pub fn reserve(&mut self, n: usize) {
        self.asns.reserve(n);
    }

    /// Id of `asn`, allocating the next dense id on first sight.
    pub fn intern(&mut self, asn: Asn) -> AsnId {
        if let Ok(short) = u16::try_from(asn.0) {
            if self.small.is_empty() {
                self.small = vec![VACANT; 1 << 16];
            }
            let slot = &mut self.small[short as usize];
            if *slot == VACANT {
                *slot = self.asns.len() as AsnId;
                self.asns.push(asn);
            }
            return *slot;
        }
        if let Some(&id) = self.ids.get(&asn) {
            return id;
        }
        let id = self.asns.len() as AsnId;
        self.ids.insert(asn, id);
        self.asns.push(asn);
        id
    }

    /// Id of `asn` if it has been interned.
    pub fn get(&self, asn: Asn) -> Option<AsnId> {
        if let Ok(short) = u16::try_from(asn.0) {
            return self
                .small
                .get(short as usize)
                .copied()
                .filter(|&id| id != VACANT);
        }
        self.ids.get(&asn).copied()
    }

    /// The ASN behind a dense id.
    ///
    /// # Panics
    /// If `id` was not produced by this interner.
    pub fn resolve(&self, id: AsnId) -> Asn {
        self.asns[id as usize]
    }

    /// Number of distinct ASNs interned (== the dense id space size).
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// All interned ASNs in id order (index == id).
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }

    /// Iterate `(id, asn)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AsnId, Asn)> + '_ {
        self.asns.iter().enumerate().map(|(i, &a)| (i as AsnId, a))
    }
}

/// Number of id segments in a [`SharedInterner`]. Segment `s` holds
/// `SEG_BASE << s` ids, so 23 segments cover the whole `u32` id space.
const N_SEGMENTS: usize = 23;

/// Capacity of segment 0 (must be a power of two).
const SEG_BASE: u32 = 1 << SEG_BASE_BITS;
const SEG_BASE_BITS: u32 = 10;

/// `(segment, offset)` of a dense id in the doubling-segment layout.
#[inline]
fn segment_of(id: AsnId) -> (usize, usize) {
    let adj = id as u64 + SEG_BASE as u64;
    let seg = (63 - adj.leading_zeros() - SEG_BASE_BITS) as usize;
    let offset = (adj - ((SEG_BASE as u64) << seg)) as usize;
    (seg, offset)
}

/// Capacity of segment `seg`.
#[inline]
fn segment_cap(seg: usize) -> usize {
    (SEG_BASE as usize) << seg
}

/// Writer-side state of a [`SharedInterner`] — the `Asn → id` direction,
/// only ever touched under the writer mutex.
#[derive(Debug, Default)]
struct SharedWriter {
    /// Direct-indexed table for 16-bit ASNs (see [`AsnInterner::small`]).
    small: Vec<AsnId>,
    /// 32-bit-only ASNs go through the hash map.
    ids: HashMap<Asn, AsnId, AsnBuildHasher>,
}

/// A workspace-level ASN interner shared across stream shards: one dense
/// `u32` id space for the whole pipeline, so per-shard counter deltas are
/// plain slices over a common index and merge by slice addition — no
/// `Asn`-keyed hop between shard and coordinator.
///
/// Concurrency model:
///
/// * **Writes** (`intern`) serialize on an internal mutex. Interning
///   happens on the single ingest thread in production, so the lock is
///   effectively uncontended; it exists so tests and future multi-writer
///   ingest paths stay correct.
/// * **Reads** (`resolve`, `len`) are lock-free. The `id → Asn` direction
///   lives in append-only *segments* of doubling size whose pointers are
///   published with `Release` stores and read with `Acquire` loads; `len`
///   is bumped (`Release`) only after the new slot is written, so any
///   reader that observes `id < len()` can read the slot without
///   synchronization. Serving threads can therefore resolve ids from a
///   published snapshot while the ingest thread keeps interning.
///
/// Ids are assigned in first-intern order starting at 0 and never change
/// — the structure is strictly append-only.
pub struct SharedInterner {
    /// `id → Asn` segments; segment `s` holds `SEG_BASE << s` slots.
    /// Null until allocated by the writer.
    segments: [AtomicPtr<AtomicU32>; N_SEGMENTS],
    /// Published id count: slots `< len` are initialized and immutable.
    len: AtomicUsize,
    writer: Mutex<SharedWriter>,
}

impl std::fmt::Debug for SharedInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedInterner")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl Default for SharedInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedInterner {
    /// Empty shared interner.
    pub fn new() -> Self {
        SharedInterner {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicUsize::new(0),
            writer: Mutex::new(SharedWriter::default()),
        }
    }

    /// Number of distinct ASNs interned (== the dense id space size).
    /// Lock-free; safe to call concurrently with writers.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The segment slot array holding `id`, allocating it if needed.
    /// Writer-side only (called under the mutex).
    fn slot(&self, id: AsnId) -> &AtomicU32 {
        let (seg, offset) = segment_of(id);
        let mut ptr = self.segments[seg].load(Ordering::Acquire);
        if ptr.is_null() {
            let boxed: Box<[AtomicU32]> =
                (0..segment_cap(seg)).map(|_| AtomicU32::new(0)).collect();
            ptr = Box::into_raw(boxed) as *mut AtomicU32;
            // Only the mutex-holding writer allocates, so a plain store
            // suffices; Release pairs with reader Acquire loads.
            self.segments[seg].store(ptr, Ordering::Release);
        }
        // SAFETY: `ptr` points at a live `[AtomicU32; segment_cap(seg)]`
        // allocation (published above or by a previous writer) and
        // `offset < segment_cap(seg)` by construction of `segment_of`.
        unsafe { &*ptr.add(offset) }
    }

    /// Id of `asn`, allocating the next dense id on first sight.
    /// Serializes on the writer mutex.
    pub fn intern(&self, asn: Asn) -> AsnId {
        let mut w = self.writer.lock().expect("interner writer poisoned");
        self.intern_locked(&mut w, asn)
    }

    /// Take the writer lock once and intern any number of ASNs through
    /// the returned guard — the shard push path's per-tuple batch.
    pub fn batch(&self) -> InternBatch<'_> {
        InternBatch {
            interner: self,
            writer: self.writer.lock().expect("interner writer poisoned"),
        }
    }

    fn intern_locked(&self, w: &mut SharedWriter, asn: Asn) -> AsnId {
        if let Ok(short) = u16::try_from(asn.0) {
            if w.small.is_empty() {
                w.small = vec![VACANT; 1 << 16];
            }
            if w.small[short as usize] != VACANT {
                return w.small[short as usize];
            }
            let id = self.append_locked(asn);
            w.small[short as usize] = id;
            return id;
        }
        if let Some(&id) = w.ids.get(&asn) {
            return id;
        }
        let id = self.append_locked(asn);
        w.ids.insert(asn, id);
        id
    }

    fn append_locked(&self, asn: Asn) -> AsnId {
        let id = AsnId::try_from(self.len.load(Ordering::Relaxed)).expect("id space exhausted");
        self.slot(id).store(asn.0, Ordering::Relaxed);
        // Publish: readers that see the new length also see the slot.
        self.len.store(id as usize + 1, Ordering::Release);
        id
    }

    /// Id of `asn` if it has been interned. Takes the writer lock (query
    /// paths resolve through snapshot-side sorted tables instead).
    pub fn get(&self, asn: Asn) -> Option<AsnId> {
        let w = self.writer.lock().expect("interner writer poisoned");
        if let Ok(short) = u16::try_from(asn.0) {
            return w
                .small
                .get(short as usize)
                .copied()
                .filter(|&id| id != VACANT);
        }
        w.ids.get(&asn).copied()
    }

    /// The ASN behind a dense id. Lock-free.
    ///
    /// # Panics
    /// If `id` has not been published by this interner.
    pub fn resolve(&self, id: AsnId) -> Asn {
        assert!((id as usize) < self.len(), "unpublished interner id {id}");
        let (seg, offset) = segment_of(id);
        let ptr = self.segments[seg].load(Ordering::Acquire);
        debug_assert!(!ptr.is_null());
        // SAFETY: `id < len` (Acquire) guarantees the slot was written and
        // the segment pointer published before `len` advanced past `id`.
        Asn(unsafe { &*ptr.add(offset) }.load(Ordering::Relaxed))
    }

    /// Iterate `(id, asn)` pairs for ids in `lo..hi` (clamped to the
    /// published length) — the publisher's incremental sorted-table
    /// maintenance walks only the ids added since its last sync.
    pub fn range(&self, lo: AsnId, hi: AsnId) -> impl Iterator<Item = (AsnId, Asn)> + '_ {
        let hi = (hi as usize).min(self.len()) as AsnId;
        (lo.min(hi)..hi).map(move |id| (id, self.resolve(id)))
    }
}

/// A held writer lock on a [`SharedInterner`]: interns without
/// re-locking per call. Readers stay lock-free while this is held.
pub struct InternBatch<'a> {
    interner: &'a SharedInterner,
    writer: std::sync::MutexGuard<'a, SharedWriter>,
}

impl InternBatch<'_> {
    /// Id of `asn`, allocating the next dense id on first sight.
    #[inline]
    pub fn intern(&mut self, asn: Asn) -> AsnId {
        self.interner.intern_locked(&mut self.writer, asn)
    }
}

impl Drop for SharedInterner {
    fn drop(&mut self) {
        for (seg, slot) in self.segments.iter().enumerate() {
            let ptr = slot.load(Ordering::Acquire);
            if !ptr.is_null() {
                // SAFETY: allocated by `slot()` as a boxed slice of
                // exactly `segment_cap(seg)` AtomicU32s, never freed
                // elsewhere, and no readers outlive `&mut self`.
                drop(unsafe {
                    Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, segment_cap(seg)))
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = AsnInterner::new();
        let ids: Vec<AsnId> = [5u32, 7, 5, 9, 7]
            .iter()
            .map(|&v| it.intern(Asn(v)))
            .collect();
        assert_eq!(ids, vec![0, 1, 0, 2, 1]);
        assert_eq!(it.len(), 3);
        assert_eq!(it.resolve(2), Asn(9));
        assert_eq!(it.get(Asn(7)), Some(1));
        assert_eq!(it.get(Asn(8)), None);
    }

    #[test]
    fn iter_is_id_ordered() {
        let mut it = AsnInterner::new();
        it.intern(Asn(30));
        it.intern(Asn(10));
        let pairs: Vec<(AsnId, Asn)> = it.iter().collect();
        assert_eq!(pairs, vec![(0, Asn(30)), (1, Asn(10))]);
        assert_eq!(it.asns(), &[Asn(30), Asn(10)]);
    }

    #[test]
    fn empty() {
        let it = AsnInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn segment_math_is_contiguous() {
        // Every id maps into a valid (segment, offset) and ids are laid
        // out back to back across segment boundaries.
        let mut expect = (0usize, 0usize);
        for id in 0u32..10_000 {
            let (seg, off) = segment_of(id);
            assert_eq!((seg, off), expect, "id {id}");
            expect = if off + 1 == segment_cap(seg) {
                (seg + 1, 0)
            } else {
                (seg, off + 1)
            };
            assert!(off < segment_cap(seg));
        }
        // Spot-check deep into the 32-bit space.
        let (seg, off) = segment_of(u32::MAX - 1);
        assert!(seg < N_SEGMENTS);
        assert!(off < segment_cap(seg));
    }

    #[test]
    fn shared_interner_matches_private_semantics() {
        let shared = SharedInterner::new();
        let mut own = AsnInterner::new();
        // Mix of 16-bit and 32-bit ASNs, with repeats.
        let asns = [5u32, 70_000, 5, 9, 70_000, 200_001, 9, 64_000];
        for &a in &asns {
            assert_eq!(shared.intern(Asn(a)), own.intern(Asn(a)), "asn {a}");
        }
        assert_eq!(shared.len(), own.len());
        for (id, asn) in own.iter() {
            assert_eq!(shared.resolve(id), asn);
            assert_eq!(shared.get(asn), Some(id));
        }
        assert_eq!(shared.get(Asn(12345)), None);
    }

    #[test]
    fn shared_interner_intern_path_is_one_shot() {
        let shared = SharedInterner::new();
        let out: Vec<AsnId> = {
            let mut batch = shared.batch();
            [Asn(3356), Asn(174), Asn(3356)]
                .iter()
                .map(|&a| batch.intern(a))
                .collect()
        };
        assert_eq!(out, vec![0, 1, 0]);
        assert_eq!(shared.len(), 2);
        let pairs: Vec<(AsnId, Asn)> = shared.range(0, u32::MAX).collect();
        assert_eq!(pairs, vec![(0, Asn(3356)), (1, Asn(174))]);
        assert_eq!(shared.range(1, u32::MAX).count(), 1);
    }

    #[test]
    fn shared_interner_crosses_segment_boundaries() {
        let shared = SharedInterner::new();
        let n = (SEG_BASE as usize) * 3 + 17; // spans segments 0 and 1
        for i in 0..n {
            let asn = Asn(100_000 + i as u32); // force the 32-bit map path
            assert_eq!(shared.intern(asn), i as AsnId);
        }
        assert_eq!(shared.len(), n);
        for i in 0..n {
            assert_eq!(shared.resolve(i as AsnId), Asn(100_000 + i as u32));
        }
    }

    #[test]
    fn shared_interner_concurrent_readers_see_published_prefix() {
        use std::sync::Arc;
        let shared = Arc::new(SharedInterner::new());
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for i in 0..20_000u32 {
                    shared.intern(Asn(3_000_000 + i));
                }
            })
        };
        // Readers continuously validate every published id while the
        // writer appends.
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let n = shared.len();
                        if n > 0 {
                            // Sample the prefix rather than scanning all.
                            for id in [0, n / 2, n - 1] {
                                let asn = shared.resolve(id as AsnId);
                                assert_eq!(asn, Asn(3_000_000 + id as u32));
                            }
                        }
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(shared.len(), 20_000);
    }
}
