//! ASN interning: dense `u32` ids for hot-path indexed storage.
//!
//! The inference hot loop is dominated by per-AS lookups — counters,
//! phase predicates, tag evidence. Keying those by [`Asn`] forces a hash
//! per touch; interning every ASN once into a dense id space turns each
//! of them into a plain array index and makes per-AS tables mergeable by
//! slice addition. The interner is the id authority shared by the
//! compiled tuple store and the dense counter store in `bgp-infer`.

use crate::asn::Asn;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiply-xorshift hasher for the interner's `Asn → id` map.
///
/// Interning happens once per path hop, so the default SipHash dominates
/// compile time; ASN keys are attacker-free 32-bit values and need only
/// good avalanche, not DoS resistance.
#[derive(Debug, Clone, Default)]
pub struct AsnHasher(u64);

impl Hasher for AsnHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback path (FNV-1a); `Asn` hashing always takes `write_u32`.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        let mut x = (self.0 ^ v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        self.0 = x;
    }
}

/// A dense id assigned by [`AsnInterner::intern`].
///
/// Ids are assigned in first-seen order starting at 0 and are only
/// meaningful relative to the interner that produced them.
pub type AsnId = u32;

/// Bidirectional ASN ⇄ dense-id map.
///
/// ```
/// use bgp_types::prelude::*;
///
/// let mut interner = AsnInterner::new();
/// let a = interner.intern(Asn(3356));
/// let b = interner.intern(Asn(174));
/// assert_eq!(interner.intern(Asn(3356)), a); // stable
/// assert_ne!(a, b);
/// assert_eq!(interner.resolve(b), Asn(174));
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AsnInterner {
    /// Direct-indexed id table for 16-bit ASNs (the vast majority of
    /// path hops): `small[asn] == VACANT` until assigned. Allocated
    /// lazily on the first 16-bit intern (256 KiB).
    small: Vec<AsnId>,
    /// 32-bit-only ASNs go through the hash map.
    ids: HashMap<Asn, AsnId, BuildHasherDefault<AsnHasher>>,
    asns: Vec<Asn>,
}

/// Sentinel for "no id assigned" in the direct 16-bit table. Ids are
/// dense from 0, so the sentinel is unreachable as a real id.
const VACANT: AsnId = AsnId::MAX;

impl AsnInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size for roughly `n` distinct ASNs (avoids rehash churn in
    /// bulk compiles).
    pub fn reserve(&mut self, n: usize) {
        self.asns.reserve(n);
    }

    /// Id of `asn`, allocating the next dense id on first sight.
    pub fn intern(&mut self, asn: Asn) -> AsnId {
        if let Ok(short) = u16::try_from(asn.0) {
            if self.small.is_empty() {
                self.small = vec![VACANT; 1 << 16];
            }
            let slot = &mut self.small[short as usize];
            if *slot == VACANT {
                *slot = self.asns.len() as AsnId;
                self.asns.push(asn);
            }
            return *slot;
        }
        if let Some(&id) = self.ids.get(&asn) {
            return id;
        }
        let id = self.asns.len() as AsnId;
        self.ids.insert(asn, id);
        self.asns.push(asn);
        id
    }

    /// Id of `asn` if it has been interned.
    pub fn get(&self, asn: Asn) -> Option<AsnId> {
        if let Ok(short) = u16::try_from(asn.0) {
            return self
                .small
                .get(short as usize)
                .copied()
                .filter(|&id| id != VACANT);
        }
        self.ids.get(&asn).copied()
    }

    /// The ASN behind a dense id.
    ///
    /// # Panics
    /// If `id` was not produced by this interner.
    pub fn resolve(&self, id: AsnId) -> Asn {
        self.asns[id as usize]
    }

    /// Number of distinct ASNs interned (== the dense id space size).
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// All interned ASNs in id order (index == id).
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }

    /// Iterate `(id, asn)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AsnId, Asn)> + '_ {
        self.asns.iter().enumerate().map(|(i, &a)| (i as AsnId, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = AsnInterner::new();
        let ids: Vec<AsnId> = [5u32, 7, 5, 9, 7]
            .iter()
            .map(|&v| it.intern(Asn(v)))
            .collect();
        assert_eq!(ids, vec![0, 1, 0, 2, 1]);
        assert_eq!(it.len(), 3);
        assert_eq!(it.resolve(2), Asn(9));
        assert_eq!(it.get(Asn(7)), Some(1));
        assert_eq!(it.get(Asn(8)), None);
    }

    #[test]
    fn iter_is_id_ordered() {
        let mut it = AsnInterner::new();
        it.intern(Asn(30));
        it.intern(Asn(10));
        let pairs: Vec<(AsnId, Asn)> = it.iter().collect();
        assert_eq!(pairs, vec![(0, Asn(30)), (1, Asn(10))]);
        assert_eq!(it.asns(), &[Asn(30), Asn(10)]);
    }

    #[test]
    fn empty() {
        let it = AsnInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }
}
