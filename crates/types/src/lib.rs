//! # bgp-types
//!
//! Core BGP data model for the IMC'21 *AS-Level BGP Community Usage
//! Classification* reproduction: ASNs, communities (regular RFC 1997 and
//! large RFC 8092), community sets, AS paths with the paper's sanitation
//! transforms, prefixes, UPDATE/RIB models, allocation registries, and the
//! `(path, comm)` tuples that the inference algorithm consumes.
//!
//! The types here are deliberately dependency-light so every other crate in
//! the workspace (codec, topology, simulator, collector, inference, eval)
//! can share them.
//!
//! ```
//! use bgp_types::prelude::*;
//!
//! let p = path(&[64500, 3356, 174]);        // A1=64500 (peer) .. An=174 (origin)
//! let comm = CommunitySet::from_iter([AnyCommunity::regular(3356, 2001)]);
//! assert!(comm.contains_upper(Asn(3356)));  // "3356:* ∈ comm"
//! let t = PathCommTuple::new(p, comm);
//! assert_eq!(t.path.origin(), Asn(174));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod as_path;
pub mod asn;
pub mod comm_set;
pub mod community;
pub mod intern;
pub mod prefix;
pub mod registry;
pub mod tuple;
pub mod update;
pub mod wellknown;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::as_path::{path, AsPath, PathSegment, RawAsPath};
    pub use crate::asn::Asn;
    pub use crate::comm_set::CommunitySet;
    pub use crate::community::{AnyCommunity, Community, LargeCommunity};
    pub use crate::intern::{AsnBuildHasher, AsnHasher, AsnId, AsnInterner, SharedInterner};
    pub use crate::prefix::Prefix;
    pub use crate::registry::{Allocation, AsnRegistry, PrefixRegistry};
    pub use crate::tuple::{PathCommTuple, TupleSet};
    pub use crate::update::{Origin, PathAttributes, RibEntry, UpdateMessage};
    pub use crate::wellknown::{display_name, lookup as wellknown_lookup, WellKnown};
}

pub use community::Community as RegularCommunity;

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;

    fn arb_asn() -> impl Strategy<Value = Asn> {
        prop_oneof![
            (1u32..65536).prop_map(Asn),       // 16-bit space
            (65536u32..400_000).prop_map(Asn), // 32-bit space
        ]
    }

    fn arb_community() -> impl Strategy<Value = AnyCommunity> {
        prop_oneof![
            (any::<u16>(), any::<u16>()).prop_map(|(a, b)| AnyCommunity::regular(a, b)),
            (any::<u32>(), any::<u32>(), any::<u32>())
                .prop_map(|(a, b, c)| AnyCommunity::large(a, b, c)),
        ]
    }

    proptest! {
        #[test]
        fn community_set_union_commutes(
            xs in prop::collection::vec(arb_community(), 0..20),
            ys in prop::collection::vec(arb_community(), 0..20),
        ) {
            let a = CommunitySet::from_iter(xs);
            let b = CommunitySet::from_iter(ys);
            prop_assert_eq!(a.union(&b), b.union(&a));
        }

        #[test]
        fn community_set_union_idempotent(
            xs in prop::collection::vec(arb_community(), 0..20),
        ) {
            let a = CommunitySet::from_iter(xs);
            prop_assert_eq!(a.union(&a), a.clone());
        }

        #[test]
        fn community_set_union_contains_both(
            xs in prop::collection::vec(arb_community(), 0..10),
            ys in prop::collection::vec(arb_community(), 0..10),
        ) {
            let a = CommunitySet::from_iter(xs.clone());
            let b = CommunitySet::from_iter(ys.clone());
            let u = a.union(&b);
            for c in xs.iter().chain(ys.iter()) {
                prop_assert!(u.contains(c));
            }
            prop_assert!(u.len() <= a.len() + b.len());
        }

        #[test]
        fn extend_union_equals_union(
            xs in prop::collection::vec(arb_community(), 0..20),
            ys in prop::collection::vec(arb_community(), 0..20),
        ) {
            let a = CommunitySet::from_iter(xs);
            let b = CommunitySet::from_iter(ys);
            let mut merged = a.clone();
            merged.extend_union(&b);
            prop_assert_eq!(merged, a.union(&b));
        }

        #[test]
        fn contains_upper_equals_linear_scan(
            xs in prop::collection::vec(arb_community(), 0..30),
            probe in arb_asn(),
        ) {
            let s = CommunitySet::from_iter(xs);
            let linear = s.iter().any(|c| c.upper_field() == probe);
            prop_assert_eq!(s.contains_upper(probe), linear);
            for c in s.iter() {
                prop_assert!(s.contains_upper(c.upper_field()));
            }
        }

        #[test]
        fn sanitize_is_idempotent(asns in prop::collection::vec(arb_asn(), 1..12)) {
            let raw = RawAsPath::from_sequence(asns);
            if let Some(clean) = raw.sanitize(None) {
                let again = RawAsPath::from_sequence(clean.asns().to_vec())
                    .sanitize(None)
                    .expect("clean path stays clean");
                prop_assert_eq!(clean, again);
            }
        }

        #[test]
        fn sanitize_never_leaves_adjacent_duplicates(
            asns in prop::collection::vec(arb_asn(), 1..16),
        ) {
            if let Some(clean) = RawAsPath::from_sequence(asns).sanitize(None) {
                for w in clean.asns().windows(2) {
                    prop_assert_ne!(w[0], w[1]);
                }
            }
        }

        #[test]
        fn peer_prepend_makes_peer_first(
            asns in prop::collection::vec(arb_asn(), 1..8),
            peer in arb_asn(),
        ) {
            if let Some(clean) = RawAsPath::from_sequence(asns).sanitize(Some(peer)) {
                prop_assert_eq!(clean.peer(), peer);
            }
        }

        #[test]
        fn prefix_parse_display_roundtrip(net in any::<u32>(), len in 0u8..=32) {
            let p = Prefix::v4(net.to_be_bytes(), len);
            let parsed: Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, parsed);
        }

        #[test]
        fn community_parse_display_roundtrip(a in any::<u16>(), b in any::<u16>()) {
            let c = Community::new(a, b);
            let parsed: Community = c.to_string().parse().unwrap();
            prop_assert_eq!(c, parsed);
        }

        #[test]
        fn tuple_set_len_le_total(ts in prop::collection::vec(
            (prop::collection::vec(arb_asn(), 1..5), prop::collection::vec(arb_community(), 0..4)),
            0..30,
        )) {
            let mut s = TupleSet::new();
            for (asns, comms) in ts {
                if let Some(p) = AsPath::new(asns) {
                    s.insert(PathCommTuple::new(p, CommunitySet::from_iter(comms)));
                }
            }
            prop_assert!(s.len() as u64 <= s.total_ingested());
        }
    }
}
