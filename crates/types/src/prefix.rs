//! IP prefixes (IPv4 and IPv6 CIDR blocks).
//!
//! Prefixes identify the NLRI of BGP announcements. The inference algorithm
//! itself only needs prefixes for sanitation (dropping unallocated space,
//! paper §4.1) and for selecting the PEERING validation prefix (§7.4), but
//! the MRT codec requires full binary encode/decode of both families.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// An IP prefix: address family, masked network bits, and prefix length.
///
/// The network address is stored masked (host bits zero), so equal CIDR
/// blocks written differently compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Prefix {
    /// IPv4 CIDR block.
    V4 {
        /// Network address with host bits cleared.
        net: u32,
        /// Prefix length, `0..=32`.
        len: u8,
    },
    /// IPv6 CIDR block.
    V6 {
        /// Network address with host bits cleared.
        net: u128,
        /// Prefix length, `0..=128`.
        len: u8,
    },
}

impl Prefix {
    /// Build an IPv4 prefix from octets, masking host bits.
    pub fn v4(octets: [u8; 4], len: u8) -> Self {
        let len = len.min(32);
        let raw = u32::from_be_bytes(octets);
        Prefix::V4 {
            net: mask_v4(raw, len),
            len,
        }
    }

    /// Build an IPv6 prefix from 16 octets, masking host bits.
    pub fn v6(octets: [u8; 16], len: u8) -> Self {
        let len = len.min(128);
        let raw = u128::from_be_bytes(octets);
        Prefix::V6 {
            net: mask_v6(raw, len),
            len,
        }
    }

    /// Prefix length in bits. A length of 0 is a valid prefix (the
    /// default route, see [`Prefix::is_default`]), not an "empty" one, so
    /// no `is_empty` counterpart exists.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        match self {
            Prefix::V4 { len, .. } | Prefix::V6 { len, .. } => *len,
        }
    }

    /// True when the prefix length is zero (default route).
    pub fn is_default(&self) -> bool {
        self.len() == 0
    }

    /// Whether the prefix is IPv4.
    pub fn is_v4(&self) -> bool {
        matches!(self, Prefix::V4 { .. })
    }

    /// Whether the prefix is IPv6.
    pub fn is_v6(&self) -> bool {
        matches!(self, Prefix::V6 { .. })
    }

    /// Whether `other` is fully contained in `self` (same family, longer or
    /// equal mask, matching network bits).
    pub fn covers(&self, other: &Prefix) -> bool {
        match (self, other) {
            (Prefix::V4 { net: a, len: la }, Prefix::V4 { net: b, len: lb }) => {
                lb >= la && mask_v4(*b, *la) == *a
            }
            (Prefix::V6 { net: a, len: la }, Prefix::V6 { net: b, len: lb }) => {
                lb >= la && mask_v6(*b, *la) == *a
            }
            _ => false,
        }
    }

    /// Whether the prefix falls in well-known bogon space (private,
    /// loopback, link-local, documentation, multicast, reserved).
    pub fn is_bogon(&self) -> bool {
        const BOGONS_V4: &[([u8; 4], u8)] = &[
            ([0, 0, 0, 0], 8),
            ([10, 0, 0, 0], 8),
            ([100, 64, 0, 0], 10),
            ([127, 0, 0, 0], 8),
            ([169, 254, 0, 0], 16),
            ([172, 16, 0, 0], 12),
            ([192, 0, 0, 0], 24),
            ([192, 0, 2, 0], 24),
            ([192, 168, 0, 0], 16),
            ([198, 18, 0, 0], 15),
            ([198, 51, 100, 0], 24),
            ([203, 0, 113, 0], 24),
            ([224, 0, 0, 0], 4),
            ([240, 0, 0, 0], 4),
        ];
        match self {
            Prefix::V4 { .. } => BOGONS_V4
                .iter()
                .any(|&(o, l)| Prefix::v4(o, l).covers(self)),
            Prefix::V6 { net, .. } => {
                let top = (net >> 112) as u16;
                // ::/8 (incl. loopback/unspecified), fc00::/7 ULA,
                // fe80::/10 link-local, ff00::/8 multicast, 2001:db8::/32 doc
                (top & 0xff00) == 0
                    || (top & 0xfe00) == 0xfc00
                    || (top & 0xffc0) == 0xfe80
                    || (top & 0xff00) == 0xff00
                    || (*net >> 96) as u32 == 0x2001_0db8
            }
        }
    }

    /// Network bytes, big-endian, full width (4 or 16 bytes).
    pub fn net_bytes(&self) -> Vec<u8> {
        match self {
            Prefix::V4 { net, .. } => net.to_be_bytes().to_vec(),
            Prefix::V6 { net, .. } => net.to_be_bytes().to_vec(),
        }
    }

    /// Number of bytes needed to encode the network portion in BGP NLRI
    /// packed form: `ceil(len / 8)`.
    pub fn nlri_byte_len(&self) -> usize {
        (self.len() as usize).div_ceil(8)
    }
}

fn mask_v4(raw: u32, len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        raw & (u32::MAX << (32 - len as u32))
    }
}

fn mask_v6(raw: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        raw & (u128::MAX << (128 - len as u32))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4 { net, len } => write!(f, "{}/{}", Ipv4Addr::from(*net), len),
            Prefix::V6 { net, len } => write!(f, "{}/{}", Ipv6Addr::from(*net), len),
        }
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        // v4 before v6, then by network, then by length.
        match (self, other) {
            (Prefix::V4 { net: a, len: la }, Prefix::V4 { net: b, len: lb }) => {
                a.cmp(b).then(la.cmp(lb))
            }
            (Prefix::V6 { net: a, len: la }, Prefix::V6 { net: b, len: lb }) => {
                a.cmp(b).then(la.cmp(lb))
            }
            (Prefix::V4 { .. }, Prefix::V6 { .. }) => Ordering::Less,
            (Prefix::V6 { .. }, Prefix::V4 { .. }) => Ordering::Greater,
        }
    }
}

impl std::str::FromStr for Prefix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| format!("missing '/' in {s:?}"))?;
        let len: u8 = len.parse().map_err(|e| format!("bad length: {e}"))?;
        if let Ok(v4) = addr.parse::<Ipv4Addr>() {
            if len > 32 {
                return Err(format!("/{} too long for IPv4", len));
            }
            Ok(Prefix::v4(v4.octets(), len))
        } else if let Ok(v6) = addr.parse::<Ipv6Addr>() {
            if len > 128 {
                return Err(format!("/{} too long for IPv6", len));
            }
            Ok(Prefix::v6(v6.octets(), len))
        } else {
            Err(format!("unparseable address {addr:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_normalizes() {
        assert_eq!(
            Prefix::v4([192, 168, 1, 77], 24),
            Prefix::v4([192, 168, 1, 0], 24)
        );
        assert_eq!(Prefix::v4([1, 2, 3, 4], 0), Prefix::v4([0, 0, 0, 0], 0));
    }

    #[test]
    fn covers() {
        let a = Prefix::v4([10, 0, 0, 0], 8);
        let b = Prefix::v4([10, 1, 0, 0], 16);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
        let v6 = Prefix::v6(
            [0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            32,
        );
        assert!(!a.covers(&v6));
    }

    #[test]
    fn bogon_detection_v4() {
        assert!(Prefix::v4([10, 1, 2, 0], 24).is_bogon());
        assert!(Prefix::v4([192, 168, 0, 0], 16).is_bogon());
        assert!(Prefix::v4([198, 51, 100, 0], 24).is_bogon());
        assert!(!Prefix::v4([193, 0, 0, 0], 16).is_bogon());
        assert!(!Prefix::v4([8, 8, 8, 0], 24).is_bogon());
    }

    #[test]
    fn bogon_detection_v6() {
        let doc = "2001:db8::/32".parse::<Prefix>().unwrap();
        assert!(doc.is_bogon());
        let ula = "fc00::/7".parse::<Prefix>().unwrap();
        assert!(ula.is_bogon());
        let global = "2a00::/12".parse::<Prefix>().unwrap();
        assert!(!global.is_bogon());
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["193.0.0.0/16", "10.0.0.0/8", "2001:db8::/32", "0.0.0.0/0"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!("193.0.0.0".parse::<Prefix>().is_err());
        assert!("193.0.0.0/33".parse::<Prefix>().is_err());
        assert!("xyz/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn nlri_byte_len() {
        assert_eq!(Prefix::v4([193, 0, 0, 0], 16).nlri_byte_len(), 2);
        assert_eq!(Prefix::v4([193, 0, 0, 0], 17).nlri_byte_len(), 3);
        assert_eq!(Prefix::v4([0, 0, 0, 0], 0).nlri_byte_len(), 0);
        assert_eq!(
            "2001:db8::/32".parse::<Prefix>().unwrap().nlri_byte_len(),
            4
        );
    }

    #[test]
    fn ordering_v4_before_v6() {
        let v4 = Prefix::v4([255, 255, 255, 255], 32);
        let v6 = "::/0".parse::<Prefix>().unwrap();
        assert!(v4 < v6);
    }
}
