//! Allocation registry for ASNs and prefixes.
//!
//! The paper's sanitation pipeline (§4.1) removes "routing information that
//! includes unallocated prefixes or ASNs using current allocation
//! information from the regional registries". Public route collectors ship
//! real RIR delegation files; this module implements the same interface over
//! either (a) explicit allocation ranges loaded from delegation-style
//! records, or (b) a synthetic allocation consistent with a generated
//! topology.

use crate::asn::Asn;
use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Allocation status of a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Allocation {
    /// Allocated/assigned by an RIR and usable in the public Internet.
    Allocated,
    /// In an allocatable range but not currently delegated.
    Unallocated,
    /// Reserved, private, or documentation space — never publicly valid.
    Reserved,
}

/// A contiguous allocated ASN range, as found in RIR delegation files
/// (`aut-num|start|count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsnRange {
    /// First ASN in the range.
    pub start: u32,
    /// Number of consecutive ASNs.
    pub count: u32,
}

impl AsnRange {
    /// Whether `asn` falls inside this range.
    pub fn contains(&self, asn: Asn) -> bool {
        asn.0 >= self.start && (asn.0 - self.start) < self.count
    }
}

/// Registry of allocated ASNs and prefixes.
///
/// The inference pipeline consults this to (a) drop tuples whose path
/// mentions unallocated ASNs and (b) decide whether a community upper field
/// is `private` (paper §3.2). Lookups are O(log n) over sorted ranges plus
/// an exact-member set for synthetic allocations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsnRegistry {
    /// Sorted, disjoint allocated ranges (delegation-file style).
    ranges: Vec<AsnRange>,
    /// Individually allocated ASNs (synthetic topologies register here).
    members: BTreeSet<u32>,
    /// If true, every public-range ASN is treated as allocated. Useful for
    /// analyses that only need the reserved/private split.
    assume_all_allocated: bool,
}

impl AsnRegistry {
    /// An empty registry: nothing allocated.
    pub fn new() -> Self {
        Self::default()
    }

    /// A permissive registry treating every public-range ASN as allocated.
    pub fn permissive() -> Self {
        AsnRegistry {
            assume_all_allocated: true,
            ..Self::default()
        }
    }

    /// Register a delegation-style range. Ranges are kept sorted; adjacent
    /// or overlapping inserts are coalesced.
    pub fn add_range(&mut self, start: u32, count: u32) {
        if count == 0 {
            return;
        }
        self.ranges.push(AsnRange { start, count });
        self.ranges.sort_by_key(|r| r.start);
        // Coalesce overlapping/adjacent ranges.
        let mut merged: Vec<AsnRange> = Vec::with_capacity(self.ranges.len());
        for r in self.ranges.drain(..) {
            match merged.last_mut() {
                Some(last) if r.start <= last.start.saturating_add(last.count) => {
                    let last_end = last.start as u64 + last.count as u64;
                    let r_end = r.start as u64 + r.count as u64;
                    let new_end = last_end.max(r_end);
                    last.count = (new_end - last.start as u64) as u32;
                }
                _ => merged.push(r),
            }
        }
        self.ranges = merged;
    }

    /// Register a single allocated ASN.
    pub fn allocate(&mut self, asn: Asn) {
        self.members.insert(asn.0);
    }

    /// Register every ASN in an iterator (e.g. all nodes of a generated
    /// topology).
    pub fn allocate_all<I: IntoIterator<Item = Asn>>(&mut self, iter: I) {
        for a in iter {
            self.allocate(a);
        }
    }

    /// Allocation status of `asn`.
    pub fn status(&self, asn: Asn) -> Allocation {
        if asn.is_reserved_or_private() {
            return Allocation::Reserved;
        }
        if self.assume_all_allocated || self.members.contains(&asn.0) || self.range_contains(asn) {
            Allocation::Allocated
        } else {
            Allocation::Unallocated
        }
    }

    /// Whether `asn` is allocated (public and delegated).
    pub fn is_allocated(&self, asn: Asn) -> bool {
        self.status(asn) == Allocation::Allocated
    }

    /// Whether `asn` is in reserved/private space. This is the predicate
    /// that makes a community `private` in the paper's taxonomy.
    pub fn is_private(&self, asn: Asn) -> bool {
        asn.is_reserved_or_private()
    }

    /// Number of individually registered ASNs (ranges not expanded).
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    fn range_contains(&self, asn: Asn) -> bool {
        // Binary search over sorted disjoint ranges.
        let idx = self.ranges.partition_point(|r| r.start <= asn.0);
        idx > 0 && self.ranges[idx - 1].contains(asn)
    }
}

/// Registry of allocated prefixes; mirrors [`AsnRegistry`] for NLRI
/// sanitation. Synthetic datasets register the exact prefixes the topology
/// originates; bogon space is always rejected.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefixRegistry {
    members: BTreeSet<Prefix>,
    assume_all_allocated: bool,
}

impl PrefixRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry treating every non-bogon prefix as allocated.
    pub fn permissive() -> Self {
        PrefixRegistry {
            assume_all_allocated: true,
            ..Self::default()
        }
    }

    /// Register an allocated prefix.
    pub fn allocate(&mut self, p: Prefix) {
        self.members.insert(p);
    }

    /// Allocation status of a prefix.
    pub fn status(&self, p: &Prefix) -> Allocation {
        if p.is_bogon() {
            Allocation::Reserved
        } else if self.assume_all_allocated || self.members.contains(p) {
            Allocation::Allocated
        } else {
            Allocation::Unallocated
        }
    }

    /// Whether the prefix is allocated.
    pub fn is_allocated(&self, p: &Prefix) -> bool {
        self.status(p) == Allocation::Allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_allocates_nothing() {
        let reg = AsnRegistry::new();
        assert_eq!(reg.status(Asn(3356)), Allocation::Unallocated);
        assert_eq!(reg.status(Asn(64512)), Allocation::Reserved);
    }

    #[test]
    fn permissive_allocates_public_only() {
        let reg = AsnRegistry::permissive();
        assert_eq!(reg.status(Asn(3356)), Allocation::Allocated);
        assert_eq!(reg.status(Asn(0)), Allocation::Reserved);
        assert_eq!(reg.status(Asn(4_294_967_295)), Allocation::Reserved);
    }

    #[test]
    fn member_allocation() {
        let mut reg = AsnRegistry::new();
        reg.allocate(Asn(7018));
        assert!(reg.is_allocated(Asn(7018)));
        assert!(!reg.is_allocated(Asn(7019)));
        assert_eq!(reg.member_count(), 1);
    }

    #[test]
    fn range_allocation_and_coalescing() {
        let mut reg = AsnRegistry::new();
        reg.add_range(100, 10); // 100..110
        reg.add_range(110, 5); // adjacent -> coalesce to 100..115
        reg.add_range(200, 1);
        assert!(reg.is_allocated(Asn(100)));
        assert!(reg.is_allocated(Asn(109)));
        assert!(reg.is_allocated(Asn(114)));
        assert!(!reg.is_allocated(Asn(115)));
        assert!(reg.is_allocated(Asn(200)));
        assert!(!reg.is_allocated(Asn(199)));
    }

    #[test]
    fn overlapping_ranges_coalesce() {
        let mut reg = AsnRegistry::new();
        reg.add_range(100, 50);
        reg.add_range(120, 100); // overlaps -> 100..220
        assert!(reg.is_allocated(Asn(219)));
        assert!(!reg.is_allocated(Asn(220)));
    }

    #[test]
    fn reserved_beats_ranges() {
        let mut reg = AsnRegistry::new();
        reg.add_range(64500, 100); // straddles documentation + private space
        assert_eq!(reg.status(Asn(64512)), Allocation::Reserved);
    }

    #[test]
    fn zero_count_range_is_noop() {
        let mut reg = AsnRegistry::new();
        reg.add_range(5, 0);
        assert!(!reg.is_allocated(Asn(5)));
    }

    #[test]
    fn prefix_registry() {
        use crate::prefix::Prefix;
        let mut reg = PrefixRegistry::new();
        let p = Prefix::v4([10, 0, 0, 0], 8); // bogon (RFC1918)
        let q = Prefix::v4([193, 0, 0, 0], 16);
        reg.allocate(q);
        assert_eq!(reg.status(&p), Allocation::Reserved);
        assert_eq!(reg.status(&q), Allocation::Allocated);
        assert_eq!(
            reg.status(&Prefix::v4([198, 51, 0, 0], 16)),
            Allocation::Unallocated
        );
        assert!(PrefixRegistry::permissive().is_allocated(&q));
    }
}
