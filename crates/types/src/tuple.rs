//! `(path, comm)` tuples — the canonical input of the inference algorithm.
//!
//! The paper reduces billions of MRT entries to tens of millions of *unique*
//! `(path, comm)` pairs (Table 1) and runs the column-based algorithm over
//! that deduplicated list. [`TupleSet`] is that deduplicated list plus the
//! bookkeeping needed for dataset statistics.

use crate::as_path::AsPath;
use crate::asn::Asn;
use crate::comm_set::CommunitySet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One AS-path / community-set observation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathCommTuple {
    /// Sanitized AS path `A1..An`.
    pub path: AsPath,
    /// The community set `output(A1)` observed with it.
    pub comm: CommunitySet,
}

impl PathCommTuple {
    /// Construct a tuple.
    pub fn new(path: AsPath, comm: CommunitySet) -> Self {
        PathCommTuple { path, comm }
    }
}

/// A deduplicated collection of tuples with ingestion counters.
///
/// `total_ingested` counts every offered tuple (the paper's "entries"),
/// while `len()` is the number of *unique* pairs actually stored.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TupleSet {
    set: BTreeSet<PathCommTuple>,
    total_ingested: u64,
}

impl TupleSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a tuple; duplicates are counted but not stored twice.
    /// Returns `true` when the tuple was new.
    pub fn insert(&mut self, t: PathCommTuple) -> bool {
        self.total_ingested += 1;
        self.set.insert(t)
    }

    /// Number of unique tuples.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Total tuples offered, including duplicates.
    pub fn total_ingested(&self) -> u64 {
        self.total_ingested
    }

    /// Iterate unique tuples in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &PathCommTuple> {
        self.set.iter()
    }

    /// Collect into a Vec for indexed access by the inference engine.
    pub fn to_vec(&self) -> Vec<PathCommTuple> {
        self.set.iter().cloned().collect()
    }

    /// Merge another set into this one (used when aggregating collector
    /// projects into d_May21-style datasets).
    pub fn merge(&mut self, other: &TupleSet) {
        self.total_ingested += other.total_ingested;
        for t in &other.set {
            self.set.insert(t.clone());
        }
    }

    /// All distinct ASNs appearing on any stored path.
    pub fn distinct_asns(&self) -> BTreeSet<Asn> {
        let mut out = BTreeSet::new();
        for t in &self.set {
            out.extend(t.path.asns().iter().copied());
        }
        out
    }

    /// Distinct collector-peer ASNs (`A1` of each path).
    pub fn distinct_peers(&self) -> BTreeSet<Asn> {
        self.set.iter().map(|t| t.path.peer()).collect()
    }

    /// The maximum path length observed.
    pub fn max_path_len(&self) -> usize {
        self.set.iter().map(|t| t.path.len()).max().unwrap_or(0)
    }

    /// ASNs that appear only as origin (`An`) — leaf ASes in the paper's
    /// definition: never forwarding someone else's announcement.
    pub fn leaf_asns(&self) -> BTreeSet<Asn> {
        let mut transit: BTreeSet<Asn> = BTreeSet::new();
        let mut seen: BTreeSet<Asn> = BTreeSet::new();
        for t in &self.set {
            let asns = t.path.asns();
            seen.extend(asns.iter().copied());
            for &a in &asns[..asns.len() - 1] {
                transit.insert(a);
            }
        }
        seen.difference(&transit).copied().collect()
    }
}

impl FromIterator<PathCommTuple> for TupleSet {
    fn from_iter<I: IntoIterator<Item = PathCommTuple>>(iter: I) -> Self {
        let mut s = TupleSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::as_path::path;
    use crate::community::AnyCommunity;

    fn tup(p: &[u32], comms: &[(u16, u16)]) -> PathCommTuple {
        PathCommTuple::new(
            path(p),
            CommunitySet::from_iter(comms.iter().map(|&(a, b)| AnyCommunity::regular(a, b))),
        )
    }

    #[test]
    fn dedup_counts_total() {
        let mut s = TupleSet::new();
        assert!(s.insert(tup(&[1, 2], &[(2, 5)])));
        assert!(!s.insert(tup(&[1, 2], &[(2, 5)])));
        assert!(s.insert(tup(&[1, 2], &[(2, 6)])));
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_ingested(), 3);
    }

    #[test]
    fn distinct_asns_and_peers() {
        let s: TupleSet = [tup(&[1, 2, 3], &[]), tup(&[4, 2], &[])]
            .into_iter()
            .collect();
        assert_eq!(s.distinct_asns().len(), 4);
        let peers = s.distinct_peers();
        assert!(peers.contains(&Asn(1)) && peers.contains(&Asn(4)));
        assert_eq!(peers.len(), 2);
    }

    #[test]
    fn leaf_detection() {
        // 3 only ever appears as origin; 2 forwards.
        let s: TupleSet = [tup(&[1, 2, 3], &[]), tup(&[1, 2], &[])]
            .into_iter()
            .collect();
        let leaves = s.leaf_asns();
        assert!(leaves.contains(&Asn(3)));
        assert!(!leaves.contains(&Asn(2)));
        // 1 is a peer that forwards (appears at non-terminal position).
        assert!(!leaves.contains(&Asn(1)));
    }

    #[test]
    fn origin_only_peer_is_leaf() {
        // A collector peer that only originates is a leaf.
        let s: TupleSet = [tup(&[9], &[])].into_iter().collect();
        assert!(s.leaf_asns().contains(&Asn(9)));
    }

    #[test]
    fn merge_aggregates() {
        let mut a: TupleSet = [tup(&[1, 2], &[])].into_iter().collect();
        let b: TupleSet = [tup(&[1, 2], &[]), tup(&[3, 4], &[])].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_ingested(), 3);
    }

    #[test]
    fn max_path_len() {
        let s: TupleSet = [tup(&[1, 2, 3, 4], &[]), tup(&[1, 2], &[])]
            .into_iter()
            .collect();
        assert_eq!(s.max_path_len(), 4);
        assert_eq!(TupleSet::new().max_path_len(), 0);
    }
}
