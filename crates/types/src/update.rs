//! BGP UPDATE message model (RFC 4271 §4.3) and RIB entry model.
//!
//! This is the semantic layer above the wire format: the MRT codec
//! (`bgp-mrt`) converts between these structs and bytes; the collector
//! layer produces streams of them; the inference pipeline reduces them to
//! `(path, comm)` tuples.

use crate::as_path::RawAsPath;
use crate::asn::Asn;
use crate::comm_set::CommunitySet;
use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};

/// BGP ORIGIN attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Learned from an IGP.
    Igp,
    /// Learned via EGP (historic).
    Egp,
    /// Origin unknown/incomplete (e.g. redistributed statics).
    Incomplete,
}

impl Origin {
    /// RFC 4271 wire value.
    pub fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Decode from wire value.
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

/// Path attributes relevant to this study.
///
/// `NEXT_HOP`, `MED`, `LOCAL_PREF` etc. are carried opaquely where needed by
/// the codec; only the attributes the paper's pipeline consumes are modeled
/// semantically.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PathAttributes {
    /// ORIGIN attribute, if present.
    pub origin: Option<Origin>,
    /// AS_PATH attribute (raw, pre-sanitation).
    pub as_path: RawAsPath,
    /// IPv4 next hop, if present.
    pub next_hop: Option<[u8; 4]>,
    /// Combined regular + large communities.
    pub communities: CommunitySet,
}

/// A BGP UPDATE, as captured by a route collector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateMessage {
    /// The collector peer that sent this update (MRT Peer AS Number field).
    pub peer_asn: Asn,
    /// Peer IP (opaque bytes; 4 or 16).
    pub peer_ip: Vec<u8>,
    /// Capture timestamp, seconds since epoch.
    pub timestamp: u64,
    /// Prefixes withdrawn.
    pub withdrawn: Vec<Prefix>,
    /// Prefixes announced.
    pub announced: Vec<Prefix>,
    /// Attributes applying to all announced prefixes.
    pub attributes: PathAttributes,
}

impl UpdateMessage {
    /// A minimal announcement used pervasively in tests and generators.
    pub fn announcement(
        peer_asn: Asn,
        timestamp: u64,
        prefix: Prefix,
        as_path: RawAsPath,
        communities: CommunitySet,
    ) -> Self {
        UpdateMessage {
            peer_asn,
            peer_ip: vec![192, 0, 2, 1],
            timestamp,
            withdrawn: Vec::new(),
            announced: vec![prefix],
            attributes: PathAttributes {
                origin: Some(Origin::Igp),
                as_path,
                next_hop: Some([192, 0, 2, 1]),
                communities,
            },
        }
    }

    /// Whether this update only withdraws.
    pub fn is_withdrawal_only(&self) -> bool {
        self.announced.is_empty() && !self.withdrawn.is_empty()
    }
}

/// One RIB (routing table snapshot) entry: a prefix as seen from one
/// collector peer at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// Collector peer holding the route.
    pub peer_asn: Asn,
    /// Peer IP (opaque bytes).
    pub peer_ip: Vec<u8>,
    /// Time the route was originated/last updated.
    pub originated: u64,
    /// The prefix.
    pub prefix: Prefix,
    /// Attributes.
    pub attributes: PathAttributes,
}

impl RibEntry {
    /// Build an entry with the common defaults.
    pub fn new(
        peer_asn: Asn,
        prefix: Prefix,
        as_path: RawAsPath,
        communities: CommunitySet,
    ) -> Self {
        RibEntry {
            peer_asn,
            peer_ip: vec![192, 0, 2, 1],
            originated: 0,
            prefix,
            attributes: PathAttributes {
                origin: Some(Origin::Igp),
                as_path,
                next_hop: Some([192, 0, 2, 1]),
                communities,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::AnyCommunity;

    #[test]
    fn origin_codes_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(3), None);
    }

    #[test]
    fn announcement_constructor() {
        let u = UpdateMessage::announcement(
            Asn(64500),
            1_621_382_400,
            Prefix::v4([203, 0, 114, 0], 24),
            RawAsPath::from_sequence(vec![Asn(64500), Asn(3356)]),
            CommunitySet::from_iter([AnyCommunity::regular(3356, 100)]),
        );
        assert_eq!(u.announced.len(), 1);
        assert!(u.withdrawn.is_empty());
        assert!(!u.is_withdrawal_only());
        assert_eq!(u.attributes.communities.len(), 1);
    }

    #[test]
    fn withdrawal_only() {
        let mut u = UpdateMessage::announcement(
            Asn(1),
            0,
            Prefix::v4([203, 0, 114, 0], 24),
            RawAsPath::from_sequence(vec![Asn(1)]),
            CommunitySet::new(),
        );
        u.withdrawn = u.announced.drain(..).collect();
        assert!(u.is_withdrawal_only());
    }

    #[test]
    fn rib_entry_defaults() {
        let e = RibEntry::new(
            Asn(2),
            Prefix::v4([198, 51, 0, 0], 16),
            RawAsPath::from_sequence(vec![Asn(2), Asn(7)]),
            CommunitySet::new(),
        );
        assert_eq!(e.peer_asn, Asn(2));
        assert_eq!(e.attributes.origin, Some(Origin::Igp));
    }
}
