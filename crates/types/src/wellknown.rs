//! Well-known BGP communities and their standardized router behaviors.
//!
//! RFC 1997 reserves `0xFFFF0000–0xFFFFFFFF`; RFC 8642 documents how
//! routers actually treat the well-known values. The inference pipeline
//! classifies these as `private` (their upper field is not an ASN), but a
//! production consumer of the classification database needs to *name*
//! them — blackhole telemetry, graceful-shutdown detection, NO_EXPORT
//! audits all start here.

use crate::community::{AnyCommunity, Community};

/// A named well-known community.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WellKnown {
    /// The community value.
    pub community: Community,
    /// IANA name.
    pub name: &'static str,
    /// Defining document.
    pub rfc: &'static str,
    /// Whether routers act on it by default (RFC 8642 "behavior by
    /// default" column) as opposed to requiring explicit policy.
    pub default_action: bool,
}

/// The IANA "BGP Well-known Communities" registry entries this library
/// recognizes.
pub const REGISTRY: &[WellKnown] = &[
    WellKnown {
        community: Community(0xFFFF_0000),
        name: "GRACEFUL_SHUTDOWN",
        rfc: "RFC8326",
        default_action: false,
    },
    WellKnown {
        community: Community(0xFFFF_0001),
        name: "ACCEPT_OWN",
        rfc: "RFC7611",
        default_action: false,
    },
    WellKnown {
        community: Community(0xFFFF_029A),
        name: "BLACKHOLE",
        rfc: "RFC7999",
        default_action: false,
    },
    WellKnown {
        community: Community(0xFFFF_FF01),
        name: "NO_EXPORT",
        rfc: "RFC1997",
        default_action: true,
    },
    WellKnown {
        community: Community(0xFFFF_FF02),
        name: "NO_ADVERTISE",
        rfc: "RFC1997",
        default_action: true,
    },
    WellKnown {
        community: Community(0xFFFF_FF03),
        name: "NO_EXPORT_SUBCONFED",
        rfc: "RFC1997",
        default_action: true,
    },
    WellKnown {
        community: Community(0xFFFF_FF04),
        name: "NOPEER",
        rfc: "RFC3765",
        default_action: false,
    },
];

/// Look up a community in the registry.
pub fn lookup(c: &Community) -> Option<&'static WellKnown> {
    REGISTRY.iter().find(|w| w.community == *c)
}

/// Look up either community variant (large communities have no well-known
/// registry and always return `None`).
pub fn lookup_any(c: &AnyCommunity) -> Option<&'static WellKnown> {
    match c {
        AnyCommunity::Regular(c) => lookup(c),
        AnyCommunity::Large(_) => None,
    }
}

/// Human-readable rendering: the registry name when known, the numeric
/// form otherwise.
pub fn display_name(c: &AnyCommunity) -> String {
    match lookup_any(c) {
        Some(w) => w.name.to_string(),
        None => c.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_consistency() {
        for w in REGISTRY {
            assert!(
                w.community.is_well_known(),
                "{} outside reserved range",
                w.name
            );
            assert_eq!(lookup(&w.community), Some(w));
        }
        // No duplicate values or names.
        let mut values: Vec<u32> = REGISTRY.iter().map(|w| w.community.raw()).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), REGISTRY.len());
    }

    #[test]
    fn canonical_lookups() {
        assert_eq!(lookup(&Community::NO_EXPORT).unwrap().name, "NO_EXPORT");
        assert_eq!(lookup(&Community::BLACKHOLE).unwrap().name, "BLACKHOLE");
        assert_eq!(
            lookup(&Community::GRACEFUL_SHUTDOWN).unwrap().name,
            "GRACEFUL_SHUTDOWN"
        );
        assert!(lookup(&Community::new(3356, 1)).is_none());
    }

    #[test]
    fn rfc1997_defaults_are_default_action() {
        for name in ["NO_EXPORT", "NO_ADVERTISE", "NO_EXPORT_SUBCONFED"] {
            let w = REGISTRY.iter().find(|w| w.name == name).unwrap();
            assert!(w.default_action, "{name} is acted on by default");
        }
        assert!(!lookup(&Community::BLACKHOLE).unwrap().default_action);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            display_name(&AnyCommunity::Regular(Community::NO_EXPORT)),
            "NO_EXPORT"
        );
        assert_eq!(display_name(&AnyCommunity::regular(3356, 7)), "3356:7");
        assert_eq!(display_name(&AnyCommunity::large(1, 2, 3)), "1:2:3");
        assert!(lookup_any(&AnyCommunity::large(0xFFFF_FF01, 0, 0)).is_none());
    }
}
