//! Vendored offline shim for `criterion` (see `crates/vendor/README.md`).
//!
//! A minimal wall-clock benchmark harness exposing the criterion API this
//! workspace's benches use: [`Criterion::bench_function`], benchmark
//! groups with `sample_size`/`throughput`/`bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement model: calibrate an iteration
//! count so one sample takes a few milliseconds, then time `sample_size`
//! samples and report the median (plus min/max spread and derived
//! throughput). No statistics beyond that, no HTML reports, no baselines —
//! numbers go to stdout.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time for one calibrated sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
/// Hard cap on samples per benchmark, whatever `sample_size` says: this
/// shim is for relative comparisons in CI, not publication-grade stats.
const MAX_SAMPLES: usize = 15;

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Input elements processed per iteration.
    Elements(u64),
    /// Input bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times the closure under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `self.iters` times, recording total elapsed time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibrate: double the iteration count until one sample is long
    // enough to time reliably.
    let mut iters: u64 = 1;
    let per_iter_ns = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
            break b.elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 2;
    };
    let _ = per_iter_ns;

    let samples = sample_size.clamp(1, MAX_SAMPLES);
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];

    let mut line = format!(
        "{label:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (median / 1e9);
        line.push_str(&format!("  thrpt: {} {unit}", fmt_quantity(rate)));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_quantity(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// The benchmark driver (one per `criterion_group!`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, 10, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (capped internally).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Throughput basis for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("col", 42).id, "col/42");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn bencher_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
