//! Vendored offline shim for `proptest` (see `crates/vendor/README.md`).
//!
//! Property tests in this workspace use a small slice of the proptest API:
//! the [`proptest!`] macro, range/tuple/`any` strategies, `prop_map`,
//! [`prop_oneof!`], `collection::vec`, `sample::Index`, and the
//! `prop_assert*` macros. This shim implements exactly that surface as a
//! *deterministic random tester*: each test function runs
//! [`ProptestConfig::cases`] cases with inputs drawn from a seeded RNG
//! (seed = FNV-1a of the test name + case number), so failures are
//! reproducible run-to-run. There is no shrinking — a failing case panics
//! with the standard assert message.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-run configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 32 keeps this single-core container's
        // suite fast while still exercising each property meaningfully.
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies. Deterministic per (test name, case).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ case as u64).wrapping_mul(0x100_0000_01b3);
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }

    /// Uniform draw from a range (delegates to the rand shim).
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: rand::SampleUniform,
        R: rand::IntoUniformRange<T>,
    {
        self.0.random_range(range)
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase for heterogeneous composition ([`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample(rng)
        }
    }

    /// Uniform choice among alternative strategies (built by [`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from type-erased arms (at least one).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident)+) => {
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A B);
    impl_tuple_strategy!(A B C);
    impl_tuple_strategy!(A B C D);
    impl_tuple_strategy!(A B C D E);
    impl_tuple_strategy!(A B C D E F);

    /// Types with a canonical whole-domain strategy ([`any`]).
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for the whole domain of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling helper types (`prop::sample::Index`).
pub mod sample {
    use super::strategy::Arbitrary;
    use super::TestRng;

    /// A position into a not-yet-known-length collection: drawn as an
    /// unconstrained value, projected with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Project onto `0..len`. Panics on `len == 0` (as upstream does).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Namespace mirror so `prop::collection::vec` / `prop::sample::Index`
/// paths from upstream proptest keep working.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob import every property-test module starts with.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in 0u8..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u16..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..10).prop_map(|x| x * 2),
                (100u32..110).prop_map(|x| x),
            ],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v < 20 || (100..110).contains(&v));
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
