//! Vendored offline shim for the `rand` crate (see `crates/vendor/README.md`).
//!
//! Implements the subset of the rand 0.9 API this workspace uses:
//! [`rngs::StdRng`] (a seeded SplitMix64 — deterministic across platforms),
//! [`SeedableRng::seed_from_u64`], the [`RngExt`] sampling methods
//! (`random_range`, `random_bool`, `random_ratio`), and the slice helpers
//! in [`seq`]. Sampling quality is adequate for simulation workloads; this
//! is not a cryptographic RNG.

#![deny(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`RngExt::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)` (`high` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Successor, saturating (used to turn inclusive ranges half-open).
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Modulo with a 128-bit intermediate: bias is < 2^-64 for
                // every span this workspace samples.
                let v = ((rng.next_u64() as u128) % span) as $t;
                low.wrapping_add(v)
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling helpers available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`) range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniformRange<T>,
    {
        let (low, high) = range.into_bounds();
        T::sample_half_open(self, low, high)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p={p} outside [0,1]");
        // 53 bits of mantissa: compare against a uniform in [0,1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// `true` with probability `numerator/denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for code written against the pre-0.9 trait name.
pub use self::RngExt as Rng;

/// Range forms accepted by [`RngExt::random_range`].
pub trait IntoUniformRange<T: SampleUniform> {
    /// Normalize to half-open `(low, high)` bounds.
    fn into_bounds(self) -> (T, T);
}

impl<T: SampleUniform> IntoUniformRange<T> for std::ops::Range<T> {
    fn into_bounds(self) -> (T, T) {
        (self.start, self.end)
    }
}

impl<T: SampleUniform> IntoUniformRange<T> for std::ops::RangeInclusive<T> {
    fn into_bounds(self) -> (T, T) {
        let (s, e) = self.into_inner();
        (s, e.successor())
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64. Deterministic for a given
    /// seed on every platform, which the simulators rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3u8..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn bool_probability_tracks() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.23..0.27).contains(&frac), "empirical {frac}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn choose_covers_all() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1u8, 2, 3];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
