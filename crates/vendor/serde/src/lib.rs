//! Vendored offline shim for `serde` (see `crates/vendor/README.md`).
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` so that
//! downstream users with a real serde can plug the types into their own
//! containers; nothing in-tree serializes through serde. The shim exports
//! the two trait names as markers and re-exports no-op derive macros under
//! the same names, which is exactly the surface `use serde::{Deserialize,
//! Serialize}` + `#[derive(...)]` needs.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
