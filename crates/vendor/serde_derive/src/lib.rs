//! Vendored offline shim for `serde_derive` (see `crates/vendor/README.md`).
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as an
//! interface annotation — nothing serializes through serde at runtime (the
//! inference db has its own hand-rolled text format in `bgp_infer::db`).
//! These derives therefore expand to nothing: the annotation compiles, and
//! no impl is generated.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
