//! Communities as a measurement tool: RTBH (remote-triggered blackholing)
//! detection, the downstream use case the paper's introduction motivates
//! (Giotsas et al., "Inferring BGP Blackholing Activity in the Internet").
//!
//! A provider defines an *action* community (e.g. `PROVIDER:666`);
//! customers under attack announce a /32 tagged with it. This example
//! shows how the classification database plus the attribution extension
//! (paper §8 future work) turn raw collector tuples into blackhole events:
//!
//! 1. infer per-AS community usage from the background traffic;
//! 2. attribute community values to their owners and split informational
//!    vs. signaling values by occurrence share;
//! 3. treat rare signaling values co-occurring with host-route (/32)
//!    announcements as blackhole candidates.
//!
//! ```sh
//! cargo run --release --example blackhole_detection
//! ```

use bgp_community_usage::prelude::*;

fn main() {
    // Background world: realistic roles, a day of regular announcements.
    let mut cfg = TopologyConfig::small();
    cfg.collector_peers = 40;
    let topo = cfg.seed(21).build();
    let paths = PathSubstrate::generate(&topo, 4).paths;
    let cones = CustomerCones::compute(&topo);
    let roles = bgp_eval::world::realistic_roles(&topo, &cones, 21);
    let prop = Propagator::new(&topo, &roles);
    let mut tuples = prop.tuples(&paths);

    // Pick a well-connected tagger as the blackhole-offering provider.
    let provider = topo
        .collector_peers()
        .into_iter()
        .find(|&a| roles.role(a).is_tagger() && !topo.is_stub(topo.id_of(a).unwrap()))
        .expect("a tagger provider exists");
    let blackhole = AnyCommunity::tag_for(provider, 666);

    // Inject a handful of RTBH events: host routes through the provider
    // carrying its action community (in addition to normal tags).
    let victim_paths: Vec<&AsPath> = paths
        .iter()
        .filter(|p| p.peer() == provider)
        .take(6)
        .collect();
    let mut events = 0;
    for vp in &victim_paths {
        let mut comm = prop.output(vp);
        comm.insert(blackhole);
        tuples.push(PathCommTuple::new((*vp).clone(), comm));
        events += 1;
    }
    println!("injected {events} RTBH announcements via {provider} (community {blackhole})");

    // 1. Classification.
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&tuples);
    let class = outcome.class_of(provider);
    println!("provider {provider} classified {class}");
    assert_eq!(class.tagging, TaggingClass::Tagger);

    // 2. Attribution: informational vs signaling split.
    let attrib = attribute(&tuples, &outcome, &AttributionConfig::default());
    println!("\nattributed community values of {provider}:");
    let mut found_blackhole = false;
    for a in attrib.of(provider) {
        println!(
            "  {}  {:>5}/{:<5} announcements ({:>5.1}%)  -> {:?}",
            a.community,
            a.occurrences,
            a.opportunities,
            a.share() * 100.0,
            a.kind
        );
        if a.community == blackhole {
            found_blackhole = true;
            assert_eq!(
                a.kind,
                UsageKind::Signaling,
                "the RTBH community must classify as signaling"
            );
        }
    }
    assert!(found_blackhole, "blackhole community not attributed");

    // 3. Event extraction: signaling values on paths through the owner.
    let signaling: Vec<AnyCommunity> = attrib
        .of(provider)
        .iter()
        .filter(|a| a.kind == UsageKind::Signaling)
        .map(|a| a.community)
        .collect();
    let detected: Vec<&PathCommTuple> = tuples
        .iter()
        .filter(|t| signaling.iter().any(|s| t.comm.contains(s)))
        .collect();
    println!(
        "\ndetected {} blackhole announcement(s) via signaling-community match",
        detected.len()
    );
    assert_eq!(
        detected.len(),
        events,
        "every injected event detected, nothing else"
    );
    for t in detected.iter().take(3) {
        println!("  victim path [{}]", t.path);
    }
    println!("\nclassification + attribution turn raw community data into RTBH telemetry.");
}
