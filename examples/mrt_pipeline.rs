//! The production data path, end to end:
//!
//! simulated Internet → **MRT bytes** (TABLE_DUMP_V2 RIBs + BGP4MP
//! updates) → MRT decode → §4.1 sanitation → deduplicated tuples →
//! inference → released classification database.
//!
//! This is what running the paper's pipeline on a real collector archive
//! looks like — only the bytes come from the simulator instead of
//! `rrc00.ripe.net`.
//!
//! ```sh
//! cargo run --release --example mrt_pipeline
//! ```

use bgp_community_usage::infer::db;
use bgp_community_usage::prelude::*;

fn main() {
    // Build a world with realistic (skewed, sparse) community usage.
    let mut cfg = TopologyConfig::small();
    cfg.collector_peers = 40;
    let topo = cfg.seed(7).build();
    let paths = PathSubstrate::generate(&topo, 4).paths;
    let cones = CustomerCones::compute(&topo);
    let roles = bgp_eval::world::realistic_roles(&topo, &cones, 7);

    // Render one day of RIPE-style MRT data.
    let builder = ArchiveBuilder::new(&topo, &roles);
    let day = builder.build_day(&CollectorProject::ripe(), &paths, 7);
    println!(
        "generated MRT archives: {} RIB bytes ({} entries), {} update bytes ({} messages)",
        day.rib_bytes.len(),
        day.rib_entries,
        day.update_bytes.len(),
        day.update_messages
    );

    // Parse the bytes back and sanitize into tuples.
    let mut tuples = TupleSet::new();
    ingest_day(&day, &mut tuples).expect("archive round-trips");
    println!(
        "ingested: {} raw entries -> {} unique (path, comm) tuples",
        tuples.total_ingested(),
        tuples.len()
    );

    // Dataset statistics (the Table 1 rows).
    let stats = DatasetStats::compute("example", &[&day], &tuples);
    println!(
        "dataset: {} ASes ({} leaves, {} 32-bit), {} communities ({} large)",
        stats.as_numbers,
        stats.leaf_ases,
        stats.ases_32bit,
        stats.communities_total,
        stats.communities_large
    );

    // Infer and summarize.
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&tuples.to_vec());
    let mut counts = std::collections::BTreeMap::new();
    for (_, class) in outcome.classes() {
        *counts.entry(class.as_str()).or_insert(0u32) += 1;
    }
    println!("\nclassification counts: {counts:?}");

    // Export the inference database (the paper's public release artifact)
    // and prove it round-trips.
    let exported = db::export(&outcome);
    let lines = exported.lines().count();
    let reimported = db::import(&exported).expect("db parses");
    assert_eq!(reimported.counters.len(), outcome.counters.len());
    println!("\ninference db: {lines} lines, round-trips losslessly");
    println!("first records:");
    for line in exported.lines().take(6) {
        println!("  {line}");
    }
}
