//! The §7.4 validation, reproduced: announce a prefix you control with
//! per-PoP communities, observe at collectors, and check every observation
//! against the passive inferences.
//!
//! * communities absent  → the path should contain an inferred cleaner;
//! * communities present → an inferred cleaner on the path contradicts.
//!
//! ```sh
//! cargo run --release --example peering_validation
//! ```

use bgp_community_usage::prelude::*;

fn main() {
    // A realistic world and its passive inference.
    let mut cfg = TopologyConfig::small();
    cfg.collector_peers = 40;
    let topo = cfg.seed(3).build();
    let paths = PathSubstrate::generate(&topo, 4).paths;
    let cones = CustomerCones::compute(&topo);
    let roles = bgp_eval::world::realistic_roles(&topo, &cones, 3);
    let tuples = Propagator::new(&topo, &roles).tuples(&paths);
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&tuples);

    // Announce through 12 PoPs, as the paper did on PEERING.
    let exp = PeeringExperiment::run(&topo, &roles, 12, 99);
    println!(
        "testbed {} announced via {} PoPs; {} unique observations at collectors",
        PEERING_ASN,
        exp.pops.len(),
        exp.unique_observations().len()
    );

    let (mut present_total, mut present_contradicted) = (0u32, 0u32);
    let (mut absent_total, mut absent_explained) = (0u32, 0u32);
    for obs in exp.unique_observations() {
        let transit = &obs.path.asns()[..obs.path.len() - 1];
        let inferred_cleaner = transit
            .iter()
            .any(|&a| outcome.class_of(a).forwarding == ForwardingClass::Cleaner);
        if obs.our_communities_present {
            present_total += 1;
            if inferred_cleaner {
                present_contradicted += 1;
            }
        } else {
            absent_total += 1;
            if inferred_cleaner {
                absent_explained += 1;
            }
        }
    }

    println!("\ncommunities present:  {present_contradicted}/{present_total} paths contradict (inferred cleaner on path)");
    println!("communities absent:   {absent_explained}/{absent_total} paths explained (inferred cleaner found)");

    // The paper's Table 4: contradictions are rare (0-3%).
    if present_total > 0 {
        let rate = present_contradicted as f64 / present_total as f64;
        assert!(rate < 0.1, "contradiction rate {rate} too high");
        println!(
            "\ncontradiction rate {:.1}% — within the paper's 0-3% band",
            rate * 100.0
        );
    }

    // Show a couple of concrete observations.
    println!("\nsample observations:");
    for obs in exp.unique_observations().into_iter().take(5) {
        println!("  path [{}] comm {} (PoP {})", obs.path, obs.comm, obs.pop);
    }
}
