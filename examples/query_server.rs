//! Serve a live classification database and query it over HTTP.
//!
//! Spins the whole serving stack up in-process: a simulated scenario
//! feed ingests through the sharded epoch pipeline while an HTTP server
//! answers queries from hot-swapped snapshots — then plays a few
//! requests against it with a plain `TcpStream` client (what `curl`
//! would see).
//!
//! Run: `cargo run --release --example query_server`

use bgp_community_usage::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!("GET {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let body_at = response.find("\r\n\r\n").map(|i| i + 4).unwrap_or(0);
    response[body_at..].to_string()
}

fn main() {
    // The serving stack: snapshot slot, metrics, HTTP workers, ingest.
    let slot = Arc::new(SnapshotSlot::new(Default::default()));
    let metrics = Arc::new(Metrics::new());
    let http = HttpServer::start(
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..Default::default()
        },
        Arc::new(Api::new(Arc::clone(&slot), Arc::clone(&metrics))),
    )
    .expect("bind loopback");
    let addr = http.local_addr();
    println!("serving on http://{addr}");

    // Ingest a simulated world: random roles, epoch per 500 events.
    let driver_cfg = DriverConfig {
        stream: StreamConfig {
            shards: 2,
            epoch: EpochPolicy::every_events(500),
            ..Default::default()
        },
        ..Default::default()
    };
    let feed = Feed::Sim {
        scenario: "random".to_string(),
        seed: 7,
        repeats: 2,
    };
    let report = spawn_ingest(driver_cfg, feed, Arc::clone(&slot), Arc::clone(&metrics))
        .join()
        .expect("ingest runs to completion");
    println!(
        "ingested {} events into {} epochs ({} unique tuples)\n",
        report.total_events, report.epochs, report.unique_tuples
    );

    // Query it like any HTTP client would.
    println!("GET /healthz\n  {}\n", get(addr, "/healthz"));
    println!("GET /v1/stats\n  {}\n", get(addr, "/v1/stats"));

    // Pick a classified AS off the snapshot and look it up by ASN.
    let snapshot = slot.load();
    let tagger = snapshot
        .records
        .iter()
        .find(|r| r.class.tagging.code() == 't')
        .expect("the random scenario always yields taggers");
    let path = format!("/v1/class/{}", tagger.asn.0);
    println!("GET {path}\n  {}\n", get(addr, &path));

    // The community dictionary: is 0:666 anyone's to interpret?
    let path = format!("/v1/community/{}:100", tagger.asn.0);
    println!("GET {path}\n  {}\n", get(addr, &path));
    println!(
        "GET /v1/community/65535:666\n  {}\n",
        get(addr, "/v1/community/65535:666")
    );

    // Threshold what-if: how many classifications move at 90%?
    println!(
        "GET /v1/reclassify?uniform=0.9\n  {}\n",
        get(addr, "/v1/reclassify?uniform=0.9")
    );

    // Recent class flips.
    println!(
        "GET /v1/flips?since_epoch=1\n  {}\n",
        get(addr, "/v1/flips?since_epoch=1")
    );

    println!(
        "answered {} requests; shutting down",
        metrics.total_requests()
    );
    http.shutdown();
}
