//! Quickstart: the whole study in ~60 lines.
//!
//! Builds a small Internet-like topology, assigns ground-truth community
//! usage roles, propagates communities to route collectors per the paper's
//! mental model, runs the passive inference algorithm, and compares the
//! inferences against the ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bgp_community_usage::prelude::*;

fn main() {
    // 1. An Internet in miniature: Tier-1 clique, transit layer, edge.
    let mut cfg = TopologyConfig::small();
    cfg.collector_peers = 40;
    let topo = cfg.seed(42).build();
    println!(
        "topology: {} ASes, {} edges, {} collector peers",
        topo.node_count(),
        topo.edge_count(),
        topo.collector_peers().len()
    );

    // 2. Valley-free paths from every collector peer to every origin —
    //    the substrate the paper takes from RIPE/RouteViews/Isolario.
    let paths = PathSubstrate::generate(&topo, 4).paths;
    println!("substrate: {} unique AS paths", paths.len());

    // 3. Ground truth: uniform random roles (the paper's `random`
    //    scenario), propagated per output(A) = tagging(A) ∪ forwarding(A).
    let dataset = Scenario::Random.materialize(&topo, &paths, 42);
    println!(
        "dataset: {} (path, community-set) tuples",
        dataset.tuples.len()
    );

    // 4. Inference at the paper's 99% thresholds.
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&dataset.tuples);

    // 5. Score against ground truth.
    let (mut correct, mut wrong, mut abstained) = (0u32, 0u32, 0u32);
    for (asn, role) in dataset.roles.iter() {
        let class = outcome.class_of(asn);
        match class.tagging {
            TaggingClass::Tagger => {
                if role.is_tagger() {
                    correct += 1;
                } else {
                    wrong += 1;
                }
            }
            TaggingClass::Silent => {
                if !role.is_tagger() && !role.is_selective() {
                    correct += 1;
                } else {
                    wrong += 1;
                }
            }
            _ => abstained += 1,
        }
    }
    println!("\ntagging inference: {correct} correct, {wrong} wrong, {abstained} abstained");
    assert_eq!(
        wrong, 0,
        "the paper's claim: when it decides, it is correct"
    );

    // 6. Show a few concrete classifications.
    println!("\nsample classifications (tagging+forwarding):");
    for asn in topo.collector_peers().into_iter().take(8) {
        let class = outcome.class_of(asn);
        let truth = dataset.roles.role(asn);
        println!("  {asn:>12}  inferred={class}  truth={}", truth.short());
    }
}
