//! Live classification over a simulated update feed.
//!
//! Builds a small Internet, materializes a random-role scenario, replays
//! it as a timestamped update stream (re-announcements included), and
//! runs the sharded `bgp-stream` pipeline with hourly epochs — printing
//! how classifications converge and flip as evidence accumulates, then
//! checking the final answer against the batch engine.
//!
//! Run with: `cargo run --release --example streaming_inference`

use bgp_community_usage::prelude::*;

fn main() {
    // 1. A world with ground truth.
    let mut cfg = TopologyConfig::small();
    cfg.transit = 30;
    cfg.edge = 120;
    cfg.collector_peers = 16;
    let graph = cfg.seed(42).build();
    let paths = PathSubstrate::generate(&graph, 3).paths;
    let ds = Scenario::Random.materialize(&graph, &paths, 42);
    println!(
        "world: {} tuples from {} paths",
        ds.tuples.len(),
        paths.len()
    );

    // 2. Replay it as a day-long update feed (each route re-announced up
    //    to 3 extra times at random moments).
    let feed = UpdateFeed::new(&ds, 42, 3);
    println!(
        "feed: {} timestamped announcements over one day\n",
        feed.len()
    );

    // 3. Stream it: 4 shards, one epoch per simulated hour.
    let mut pipe = StreamPipeline::new(StreamConfig {
        shards: 4,
        epoch: EpochPolicy::every_span(3_600),
        ..Default::default()
    });
    let mut source = IterSource::new(feed.map(|(ts, t)| StreamEvent::new(ts, t)));
    pipe.drive(&mut source, 512)
        .expect("in-memory feed cannot fail");
    let out = pipe.finish();

    println!("epoch  version  events  unique  classified  flips");
    for s in &out.snapshots {
        println!(
            "{:>5}  {:>7}  {:>6}  {:>6}  {:>10}  {:>5}",
            s.epoch,
            s.version,
            s.events,
            s.unique_tuples,
            s.classes.len(),
            s.flips.len()
        );
    }

    // 4. Watch one AS converge: replay its flip history.
    if let Some((epoch, flip)) = out.all_flips().last() {
        println!("\nlast flip (epoch {epoch}): {flip}");
    }

    // 5. The final answer is byte-identical to a batch run on the same
    //    unique tuples — streaming trades nothing for liveness.
    let unique: TupleSet = ds.tuples.iter().cloned().collect();
    let batch = InferenceEngine::new(InferenceConfig::default()).run(&unique.to_vec());
    assert_eq!(batch.classes(), out.classes(), "stream must equal batch");
    println!(
        "\nparity: {} ASes classified identically to the batch engine",
        out.classes().len()
    );
    println!(
        "stream stats: {} events, {} unique, {} duplicates, shard loads {:?}",
        out.total_events, out.unique_tuples, out.duplicates, out.shard_loads
    );

    // 6. And the snapshot exports through the same release-db format.
    let db = out.export_db();
    println!("release db: {} lines", db.lines().count());
}
