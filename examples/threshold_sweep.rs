//! Threshold sensitivity (the Figure 2 experiment, interactive size).
//!
//! Sweeps the classification threshold from 50% to 100% on the `random-p`
//! selective-tagging scenario and prints the ROC points for the tagging
//! and forwarding classifiers — demonstrating the paper's claim that the
//! algorithm is not threshold-sensitive.
//!
//! ```sh
//! cargo run --release --example threshold_sweep
//! ```

use bgp_community_usage::prelude::*;
use bgp_eval::world::truth_map;

fn main() {
    let mut cfg = TopologyConfig::small();
    cfg.collector_peers = 40;
    let topo = cfg.seed(11).build();
    let paths = PathSubstrate::generate(&topo, 4).paths;

    let ds = Scenario::RandomP.materialize(&topo, &paths, 11);
    let truth = truth_map(&ds);
    println!(
        "scenario random-p: {} tuples, {} ASes with ground truth",
        ds.tuples.len(),
        truth.len()
    );

    let thresholds: Vec<f64> = (0..=10).map(|i| 0.5 + 0.05 * i as f64).collect();
    let points = roc_sweep(&ds.tuples, &truth, &thresholds, 4);

    println!("\n thresh | tag TPR | tag FPR | fwd TPR | fwd FPR");
    println!(" -------+---------+---------+---------+--------");
    for p in &points {
        println!(
            "  {:>4.0}% |  {:>6.3} |  {:>6.3} |  {:>6.3} |  {:>6.3}",
            p.threshold * 100.0,
            p.tagging_tpr,
            p.tagging_fpr,
            p.forwarding_tpr,
            p.forwarding_fpr
        );
    }

    let fpr_spread = points.iter().map(|p| p.tagging_fpr).fold(0.0, f64::max)
        - points.iter().map(|p| p.tagging_fpr).fold(1.0, f64::min);
    println!(
        "\ntagging FPR spread across the whole sweep: {:.3} — the threshold barely matters",
        fpr_spread
    );
}
