//! # bgp-community-usage
//!
//! Facade crate for the IMC'21 *AS-Level BGP Community Usage Classification*
//! reproduction. Re-exports every workspace crate under one roof so examples
//! and downstream users need a single dependency:
//!
//! * [`types`] — BGP data model (ASNs, communities, paths, prefixes, tuples)
//! * [`mrt`] — RFC 6396 MRT + RFC 4271 BGP-4 binary codec
//! * [`topology`] — Internet-like AS graph generation, valley-free routing,
//!   customer cones
//! * [`sim`] — community propagation per the paper's mental model, scenario
//!   generators, PEERING testbed analogue
//! * [`collector`] — route-collector projects, RIB/update archives, stats
//! * [`infer`] — **the paper's contribution**: the passive per-AS community
//!   usage inference algorithm
//! * [`eval`] — regenerators for every table and figure in the paper
//! * [`stream`] — streaming incremental inference: sharded parallel
//!   ingest, epoch snapshots, live reclassification
//! * [`serve`] — the query-serving daemon: lock-free snapshot
//!   publication, hand-rolled HTTP/1.1 API over live inference state
//!
//! ## Quickstart
//!
//! ```
//! use bgp_community_usage::prelude::*;
//!
//! // 1. Generate a small Internet-like topology and its path substrate.
//! let mut cfg = TopologyConfig::small();
//! cfg.transit = 20;
//! cfg.edge = 50;
//! cfg.collector_peers = 6;
//! let topo = cfg.seed(7).build();
//! let paths = PathSubstrate::generate(&topo, 2).paths;
//!
//! // 2. Assign ground-truth roles and propagate communities to collectors.
//! let dataset = Scenario::Random.materialize(&topo, &paths, 7);
//!
//! // 3. Run the paper's inference algorithm.
//! let outcome = InferenceEngine::new(InferenceConfig::default())
//!     .run(&dataset.tuples);
//!
//! // 4. Inspect a classification (e.g. the first collector peer).
//! let some_as = topo.collector_peers()[0];
//! let class = outcome.class_of(some_as);
//! println!("{some_as} is {class}");
//! ```

pub use bgp_collector as collector;
pub use bgp_eval as eval;
pub use bgp_infer as infer;
pub use bgp_mrt as mrt;
pub use bgp_serve as serve;
pub use bgp_sim as sim;
pub use bgp_stream as stream;
pub use bgp_topology as topology;
pub use bgp_types as types;

/// One-stop import for examples and tests.
pub mod prelude {
    pub use bgp_collector::prelude::*;
    pub use bgp_infer::prelude::*;
    pub use bgp_serve::prelude::*;
    pub use bgp_sim::prelude::*;
    pub use bgp_stream::prelude::*;
    pub use bgp_topology::prelude::*;
    pub use bgp_types::prelude::*;
}
