//! Ablation studies for the design choices DESIGN.md calls out: what
//! breaks when Cond1 or Cond2 (paper §5.2) are disabled, and what the
//! row-based baseline costs in correctness. These are the quantified
//! versions of the paper's §5.7 design discussion.

use bgp_community_usage::prelude::*;
use bgp_eval::world::{truth_map, World};

fn world(seed: u64) -> World {
    let mut cfg = TopologyConfig::small();
    cfg.transit = 40;
    cfg.edge = 160;
    cfg.collector_peers = 24;
    let graph = cfg.seed(seed).build();
    let paths = PathSubstrate::generate(&graph, 4).paths;
    let cones = CustomerCones::compute(&graph);
    World {
        graph,
        paths,
        cones,
    }
}

fn hidden_tagging_decisions(ds: &GroundTruthDataset, outcome: &InferenceOutcome) -> u32 {
    ds.roles
        .iter()
        .filter(|(asn, _)| {
            ds.visibility.tagging_hidden(*asn)
                && matches!(
                    outcome.class_of(*asn).tagging,
                    TaggingClass::Tagger | TaggingClass::Silent
                )
        })
        .count() as u32
}

/// Disabling Cond1 makes the engine classify hidden ASes — the exact
/// misclassification mode Cond1 exists to prevent.
#[test]
fn without_cond1_hidden_ases_get_classified() {
    let w = world(31);
    let ds = Scenario::Random.materialize(&w.graph, &w.paths, 31);

    let full = InferenceEngine::new(InferenceConfig::default()).run(&ds.tuples);
    let ablated = InferenceEngine::new(InferenceConfig {
        enforce_cond1: false,
        ..Default::default()
    })
    .run(&ds.tuples);

    let with_cond1 = hidden_tagging_decisions(&ds, &full);
    let without_cond1 = hidden_tagging_decisions(&ds, &ablated);
    assert_eq!(
        with_cond1, 0,
        "Cond1 on: hidden ASes must stay unclassified"
    );
    assert!(
        without_cond1 > 10,
        "Cond1 off: expected hidden ASes to be (mis)classified, got {without_cond1}"
    );

    // And those extra decisions are WRONG often enough to matter: hidden
    // taggers behind cleaners look silent.
    let mut wrong = 0u32;
    for (asn, role) in ds.roles.iter() {
        if ds.visibility.tagging_hidden(asn)
            && role.is_tagger()
            && ablated.class_of(asn).tagging == TaggingClass::Silent
        {
            wrong += 1;
        }
    }
    assert!(
        wrong > 0,
        "ablated engine should misclassify hidden taggers as silent"
    );
}

/// Disabling Cond2 corrupts forwarding inference: ASes in front of silent
/// neighbors get charged as cleaners.
#[test]
fn without_cond2_forwarding_precision_collapses() {
    // Seed picked so the random world actually contains the damage
    // pattern (taggers in front of silent neighbors); which seeds do is a
    // property of the RNG stream, not of the engine.
    let w = world(59);
    let ds = Scenario::Random.materialize(&w.graph, &w.paths, 59);
    let truth = truth_map(&ds);

    let full = InferenceEngine::new(InferenceConfig::default()).run(&ds.tuples);
    let ablated = InferenceEngine::new(InferenceConfig {
        enforce_cond2: false,
        ..Default::default()
    })
    .run(&ds.tuples);

    let pr_full = precision_recall(&full, &truth);
    let pr_ablated = precision_recall(&ablated, &truth);
    assert_eq!(pr_full.forwarding_precision, 1.0);
    // With 99% thresholds most of the damage lands in `undecided`, but
    // genuine misclassifications appear — precision falls below 1.0.
    assert!(
        pr_ablated.forwarding_precision < 0.95,
        "Cond2 off: forwarding precision should degrade, got {}",
        pr_ablated.forwarding_precision
    );
}

/// The row-based baseline (Listing 2) misclassifies where the column-based
/// engine abstains — measured end to end on the same dataset.
#[test]
fn row_baseline_trades_precision_for_coverage() {
    let w = world(41);
    let ds = Scenario::Random.materialize(&w.graph, &w.paths, 41);
    let truth = truth_map(&ds);

    let column = InferenceEngine::new(InferenceConfig::default()).run(&ds.tuples);
    let row = run_row_based(&ds.tuples, Thresholds::default());

    let pr_col = precision_recall(&column, &truth);
    let pr_row = precision_recall(&row, &truth);

    // Row "decides" far more (it counts every position unconditionally)…
    let decided = |o: &InferenceOutcome| {
        o.classes()
            .into_iter()
            .filter(|(_, c)| matches!(c.tagging, TaggingClass::Tagger | TaggingClass::Silent))
            .count()
    };
    assert!(decided(&row) > decided(&column));
    // …but pays in tagging precision (hidden taggers counted silent).
    assert_eq!(pr_col.tagging_precision, 1.0);
    assert!(
        pr_row.tagging_precision < pr_col.tagging_precision,
        "row precision {} must fall below column precision",
        pr_row.tagging_precision
    );
}

/// The ablation switches must not change anything in an all-visible world
/// (alltf): Cond1/Cond2 are trivially satisfied there.
#[test]
fn ablations_are_noops_when_everything_is_visible() {
    let w = world(43);
    let ds = Scenario::AllTf.materialize(&w.graph, &w.paths, 43);
    let full = InferenceEngine::new(InferenceConfig::default()).run(&ds.tuples);
    let no_c1 = InferenceEngine::new(InferenceConfig {
        enforce_cond1: false,
        ..Default::default()
    })
    .run(&ds.tuples);
    // Tagging decisions identical (everyone forwards, so Cond1 always
    // holds once counters exist; ablation only removes the bootstrap lag).
    for (asn, class) in full.classes() {
        if matches!(class.tagging, TaggingClass::Tagger | TaggingClass::Silent) {
            assert_eq!(no_c1.class_of(asn).tagging, class.tagging, "{asn}");
        }
    }
}
