//! Failure injection and adversarial inputs across the pipeline: the
//! codec must error (never panic) on corrupt archives; sanitation must
//! neutralize pathological paths; the inference must stay sane on
//! degenerate datasets.

use bgp_community_usage::mrt;
use bgp_community_usage::prelude::*;

fn sample_update() -> UpdateMessage {
    UpdateMessage::announcement(
        Asn(60500),
        0,
        Prefix::v4([16, 0, 1, 0], 24),
        RawAsPath::from_sequence(vec![Asn(60500), Asn(3356), Asn(15169)]),
        CommunitySet::from_iter([AnyCommunity::regular(3356, 1)]),
    )
}

#[test]
fn every_truncation_point_errors_cleanly() {
    let bytes = mrt::record::encode_update(&sample_update()).unwrap();
    for cut in 0..bytes.len() {
        let results: Vec<_> = mrt::MrtReader::new(&bytes[..cut]).collect();
        // Either nothing (cut == 0) or exactly one error.
        if cut == 0 {
            assert!(results.is_empty());
        } else {
            assert_eq!(results.len(), 1);
            assert!(results[0].is_err(), "cut at {cut} decoded?!");
        }
    }
}

#[test]
fn bitflip_storm_never_panics() {
    let base = mrt::record::encode_update(&sample_update()).unwrap();
    for i in 0..base.len() {
        for bit in 0..8 {
            let mut bytes = base.clone();
            bytes[i] ^= 1 << bit;
            for r in mrt::MrtReader::new(&bytes) {
                let _ = r; // decoding may fail or succeed; it must not panic
            }
        }
    }
}

#[test]
fn as_set_only_paths_are_dropped() {
    let sanitizer = Sanitizer::permissive();
    let mut set = TupleSet::new();
    let mut u = sample_update();
    u.attributes.as_path = RawAsPath {
        segments: vec![PathSegment::Set(vec![Asn(1), Asn(2)])],
    };
    // Peer prepend still applies, so the path becomes just the peer.
    let stats = sanitizer.ingest_updates([&u], &mut set);
    assert_eq!(stats.kept, 1);
    let t = set.iter().next().unwrap();
    assert_eq!(t.path.asns(), &[Asn(60500)]);
}

#[test]
fn heavy_prepending_collapses() {
    let sanitizer = Sanitizer::permissive();
    let mut set = TupleSet::new();
    let mut u = sample_update();
    let mut path = vec![Asn(60500)];
    for _ in 0..200 {
        path.push(Asn(3356));
    }
    path.push(Asn(15169));
    u.attributes.as_path = RawAsPath::from_sequence(path);
    sanitizer.ingest_updates([&u], &mut set);
    let t = set.iter().next().unwrap();
    assert_eq!(t.path.len(), 3);
}

#[test]
fn inference_on_contradiction_storm_stays_undecided() {
    // Adversary alternates a peer's tagging every other tuple: the engine
    // must refuse to decide rather than flap.
    let mut tuples = Vec::new();
    for i in 0..200u32 {
        let comm = if i % 2 == 0 {
            CommunitySet::from_iter([AnyCommunity::regular(10, 1)])
        } else {
            CommunitySet::new()
        };
        tuples.push(PathCommTuple::new(path(&[10, 1000 + i]), comm));
    }
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&tuples);
    assert_eq!(outcome.class_of(Asn(10)).tagging, TaggingClass::Undecided);
}

#[test]
fn inference_ignores_adversarial_stray_floods() {
    // Flood every tuple with communities naming off-path and private ASNs:
    // classifications must be identical to the clean run.
    let clean: Vec<PathCommTuple> = (0..100u32)
        .map(|i| {
            PathCommTuple::new(
                path(&[10, 20, 1000 + i]),
                CommunitySet::from_iter([AnyCommunity::regular(20, 5)]),
            )
        })
        .collect();
    let flooded: Vec<PathCommTuple> = clean
        .iter()
        .map(|t| {
            let mut c = t.comm.clone();
            for j in 0..20u16 {
                c.insert(AnyCommunity::regular(30_000 + j, j)); // stray
                c.insert(AnyCommunity::regular(64_512 + j, j)); // private
            }
            PathCommTuple::new(t.path.clone(), c)
        })
        .collect();
    let cfg = InferenceConfig::default();
    let a = InferenceEngine::new(cfg.clone()).run(&clean);
    let b = InferenceEngine::new(cfg).run(&flooded);
    assert_eq!(a.classes(), b.classes());
}

#[test]
fn empty_and_single_as_paths_handled() {
    let tuples = vec![
        PathCommTuple::new(path(&[7]), CommunitySet::new()),
        PathCommTuple::new(
            path(&[8]),
            CommunitySet::from_iter([AnyCommunity::regular(8, 1)]),
        ),
    ];
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&tuples);
    assert_eq!(outcome.class_of(Asn(7)).tagging, TaggingClass::Silent);
    assert_eq!(outcome.class_of(Asn(8)).tagging, TaggingClass::Tagger);
    // Origin-only peers have no forwarding evidence.
    assert_eq!(outcome.class_of(Asn(7)).forwarding, ForwardingClass::None);
}

#[test]
fn db_import_rejects_adversarial_payloads() {
    use bgp_community_usage::infer::db;
    for garbage in [
        "999999999999999999999\ttf\t1 2 3 4", // asn overflow
        "12\ttf\t1 2 3",                      // short counters
        "12\ttf\tx y z w",                    // non-numeric
        "# thresholds tagger=nope",           // bad header
    ] {
        assert!(db::import(garbage).is_err(), "{garbage:?} accepted");
    }
}

#[test]
fn malformed_rib_peer_index_rejected_not_panicking() {
    // A RIB record referencing a peer index beyond the table.
    let table = mrt::PeerIndexTable {
        collector_id: 1,
        view_name: "x".into(),
        peers: vec![mrt::PeerEntry {
            bgp_id: 1,
            ip: vec![10, 0, 0, 1],
            asn: Asn(1),
        }],
    };
    let group = mrt::RibGroup {
        sequence: 0,
        prefix: Prefix::v4([16, 0, 0, 0], 16),
        entries: vec![(7, 0, PathAttributes::default())], // index 7 of 1
    };
    let mut w = mrt::MrtWriter::new();
    w.write_peer_index(&table, 0).unwrap();
    w.write_rib_group(&group, 0).unwrap();
    let results: Vec<_> = mrt::MrtReader::new(w.as_bytes()).collect();
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
}
