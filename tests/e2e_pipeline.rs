//! End-to-end integration: simulator → MRT bytes → parse → sanitize →
//! infer → export, with determinism and correctness checks across crate
//! boundaries.

use bgp_community_usage::infer::db;
use bgp_community_usage::prelude::*;

fn world(seed: u64) -> (AsGraph, Vec<AsPath>, CustomerCones) {
    let mut cfg = TopologyConfig::small();
    cfg.transit = 40;
    cfg.edge = 150;
    cfg.collector_peers = 20;
    let g = cfg.seed(seed).build();
    let paths = PathSubstrate::generate(&g, 4).paths;
    let cones = CustomerCones::compute(&g);
    (g, paths, cones)
}

#[test]
fn mrt_roundtrip_preserves_inference() {
    // Inference over direct tuples must equal inference over tuples that
    // took the full MRT encode/decode/sanitize detour.
    let (g, paths, _) = world(5);
    let roles = Scenario::Random.assign_roles(&g, 5);
    let prop = Propagator::new(&g, &roles);
    let direct = prop.tuples(&paths);

    let day = ArchiveBuilder::new(&g, &roles).build_day(&CollectorProject::ripe(), &paths, 5);
    let mut via_mrt = TupleSet::new();
    ingest_day(&day, &mut via_mrt).expect("archive parses");

    // The archive covers the project's peer subset; restrict the direct
    // tuples to that subset for comparison.
    let peers = CollectorProject::ripe().select_peers(&g, 5);
    let direct_subset: Vec<PathCommTuple> = direct
        .into_iter()
        .filter(|t| peers.contains(&t.path.peer()))
        .collect();

    let cfg = InferenceConfig::default();
    let a = InferenceEngine::new(cfg.clone()).run(&direct_subset);
    let b = InferenceEngine::new(cfg).run(&via_mrt.to_vec());
    assert_eq!(
        a.classes(),
        b.classes(),
        "MRT detour changed inference results"
    );
}

#[test]
fn full_pipeline_deterministic() {
    let run_once = || {
        let (g, paths, cones) = world(9);
        let roles = bgp_eval::world::realistic_roles(&g, &cones, 9);
        let day =
            ArchiveBuilder::new(&g, &roles).build_day(&CollectorProject::routeviews(), &paths, 9);
        let mut set = TupleSet::new();
        ingest_day(&day, &mut set).expect("parses");
        let outcome = InferenceEngine::new(InferenceConfig::default()).run(&set.to_vec());
        db::export(&outcome)
    };
    assert_eq!(run_once(), run_once(), "pipeline must be bit-deterministic");
}

#[test]
fn db_export_reimport_identity() {
    let (g, paths, _) = world(13);
    let roles = Scenario::Random.assign_roles(&g, 13);
    let tuples = Propagator::new(&g, &roles).tuples(&paths);
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&tuples);
    let text = db::export(&outcome);
    let back = db::import(&text).expect("parses");
    for (asn, class) in outcome.classes() {
        assert_eq!(back.class_of(asn), class);
    }
    // And exporting the re-import is a fixed point.
    assert_eq!(db::export(&back), text);
}

#[test]
fn sanitation_stats_account_for_everything() {
    let (g, paths, _) = world(17);
    let roles = Scenario::AllTf.assign_roles(&g, 17);
    let prop = Propagator::new(&g, &roles);

    let sanitizer = Sanitizer::permissive();
    let mut set = TupleSet::new();
    let updates: Vec<UpdateMessage> = paths
        .iter()
        .take(500)
        .enumerate()
        .map(|(i, p)| {
            UpdateMessage::announcement(
                p.peer(),
                i as u64,
                origin_prefix(i),
                RawAsPath::from_sequence(p.asns().to_vec()),
                prop.output(p),
            )
        })
        .collect();
    let stats = sanitizer.ingest_updates(updates.iter(), &mut set);
    assert_eq!(stats.offered, 500);
    assert_eq!(
        stats.kept + stats.dropped_asn + stats.dropped_prefix + stats.dropped_path,
        stats.offered
    );
    assert_eq!(stats.kept, 500, "clean synthetic data must all survive");
}

#[test]
fn aggregation_strictly_improves_coverage() {
    // d_May21-style aggregation: the union of three projects classifies at
    // least as many ASes as each project alone.
    let (g, paths, cones) = world(21);
    let roles = bgp_eval::world::realistic_roles(&g, &cones, 21);
    let builder = ArchiveBuilder::new(&g, &roles);

    let mut aggregate = TupleSet::new();
    let mut individual_best = 0usize;
    for project in CollectorProject::aggregated_trio() {
        let day = builder.build_day(&project, &paths, 21);
        let mut set = TupleSet::new();
        ingest_day(&day, &mut set).expect("parses");
        let outcome = InferenceEngine::new(InferenceConfig::default()).run(&set.to_vec());
        let decided = outcome
            .classes()
            .into_iter()
            .filter(|(_, c)| matches!(c.tagging, TaggingClass::Tagger | TaggingClass::Silent))
            .count();
        individual_best = individual_best.max(decided);
        aggregate.merge(&set);
    }
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&aggregate.to_vec());
    let agg_decided = outcome
        .classes()
        .into_iter()
        .filter(|(_, c)| matches!(c.tagging, TaggingClass::Tagger | TaggingClass::Silent))
        .count();
    assert!(
        agg_decided >= individual_best,
        "aggregate decided {agg_decided} < best individual {individual_best}"
    );
}
