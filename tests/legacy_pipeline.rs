//! Mixed-era archive ingestion: real collectors serve decades of data, so
//! one logical dataset can contain legacy `TABLE_DUMP`/`BGP4MP_MESSAGE`
//! records next to modern `TABLE_DUMP_V2`/`MESSAGE_AS4` ones. The pipeline
//! must ingest all of them into one coherent tuple set, reconstructing
//! AS4_PATHs where 2-byte sessions mangled 32-bit ASNs into AS_TRANS.

use bgp_community_usage::mrt::{self, legacy};
use bgp_community_usage::prelude::*;

#[test]
fn mixed_era_archive_ingests_coherently() {
    // The same logical route observed via a modern and a legacy session.
    let modern = UpdateMessage::announcement(
        Asn(3356),
        100,
        Prefix::v4([16, 0, 0, 0], 24),
        RawAsPath::from_sequence(vec![Asn(3356), Asn(200_000), Asn(15169)]),
        CommunitySet::from_iter([AnyCommunity::regular(3356, 7)]),
    );

    let mut archive = Vec::new();
    archive.extend_from_slice(&mrt::record::encode_update(&modern).unwrap());
    archive.extend_from_slice(&legacy::encode_bgp4mp_message(&modern).unwrap());

    let (tuples, raw) = mrt::extract_tuples(&archive).unwrap();
    assert_eq!(raw, 2);
    assert_eq!(tuples.len(), 2);
    // Both decode to the SAME sanitized path: the legacy AS4_PATH
    // reconstruction recovered AS200000.
    assert_eq!(tuples[0].path, tuples[1].path);
    assert!(tuples[0].path.contains(Asn(200_000)));
    assert!(
        !tuples[0].path.contains(Asn(23456)),
        "AS_TRANS must not survive"
    );
    // Communities identical too (regular only in this message).
    assert_eq!(tuples[0].comm, tuples[1].comm);

    // Dedup merges them into one logical observation.
    let mut set = TupleSet::new();
    for t in tuples {
        set.insert(t);
    }
    assert_eq!(set.len(), 1);
}

#[test]
fn legacy_table_dump_feeds_inference() {
    // A small legacy-only RIB: peer 7018 tags, origin silent; a second
    // entry proves 7018 forwards 3356's tag.
    let entries = [
        RibEntry::new(
            Asn(3356),
            Prefix::v4([16, 0, 1, 0], 24),
            RawAsPath::from_sequence(vec![Asn(3356), Asn(15169)]),
            CommunitySet::from_iter([AnyCommunity::regular(3356, 9)]),
        ),
        RibEntry::new(
            Asn(7018),
            Prefix::v4([16, 0, 1, 0], 24),
            RawAsPath::from_sequence(vec![Asn(7018), Asn(3356), Asn(15169)]),
            CommunitySet::from_iter([AnyCommunity::regular(3356, 9)]),
        ),
    ];
    let mut archive = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        archive.extend_from_slice(&legacy::encode_table_dump_v1(e, i as u16).unwrap());
    }

    let (tuples, raw) = mrt::extract_tuples(&archive).unwrap();
    assert_eq!(raw, 2);
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&tuples);
    assert_eq!(outcome.class_of(Asn(3356)).tagging, TaggingClass::Tagger);
    assert_eq!(outcome.class_of(Asn(7018)).tagging, TaggingClass::Silent);
    assert_eq!(
        outcome.class_of(Asn(7018)).forwarding,
        ForwardingClass::Forward
    );
}

#[test]
fn legacy_corruption_still_never_panics() {
    let msg = UpdateMessage::announcement(
        Asn(3356),
        0,
        Prefix::v4([16, 0, 0, 0], 24),
        RawAsPath::from_sequence(vec![Asn(3356), Asn(200_000)]),
        CommunitySet::from_iter([AnyCommunity::regular(3356, 1)]),
    );
    let base = legacy::encode_bgp4mp_message(&msg).unwrap();
    for i in 0..base.len() {
        for bit in [0u8, 3, 7] {
            let mut bytes = base.clone();
            bytes[i] ^= 1 << bit;
            for r in mrt::MrtReader::new(&bytes) {
                let _ = r;
            }
        }
    }
}
