//! The paper's headline claims, asserted as integration tests.
//!
//! Each test names the paper section it reproduces. These are the *shape*
//! claims — who wins, in which direction, by roughly what factor — that a
//! faithful reproduction must preserve at any scale.

use bgp_community_usage::prelude::*;
use bgp_eval::world::{truth_map, World};

fn world(seed: u64) -> World {
    let mut cfg = TopologyConfig::small();
    cfg.transit = 40;
    cfg.edge = 160;
    cfg.collector_peers = 24;
    let graph = cfg.seed(seed).build();
    let paths = PathSubstrate::generate(&graph, 4).paths;
    let cones = CustomerCones::compute(&graph);
    World {
        graph,
        paths,
        cones,
    }
}

/// §6.3: "All scenarios with consistent behavior show a precision of 100%."
#[test]
fn consistent_behavior_never_misclassified() {
    let w = world(1);
    for scenario in [Scenario::AllTf, Scenario::AllTc, Scenario::Random] {
        let ds = scenario.materialize(&w.graph, &w.paths, 1);
        let outcome = InferenceEngine::new(InferenceConfig::default()).run(&ds.tuples);
        let pr = precision_recall(&outcome, &truth_map(&ds));
        assert_eq!(pr.tagging_precision, 1.0, "{}", scenario.name());
        assert_eq!(pr.forwarding_precision, 1.0, "{}", scenario.name());
    }
}

/// §6.3: recall is high for consistent scenarios (93-100% tagging in the
/// paper) and the algorithm classifies less than 0.5% of hidden ASes.
#[test]
fn hidden_ases_are_not_classified() {
    let w = world(2);
    let ds = Scenario::Random.materialize(&w.graph, &w.paths, 2);
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&ds.tuples);
    let mut hidden_classified = 0u32;
    let mut hidden_total = 0u32;
    for (asn, _) in ds.roles.iter() {
        if ds.visibility.tagging_hidden(asn) {
            hidden_total += 1;
            if matches!(
                outcome.class_of(asn).tagging,
                TaggingClass::Tagger | TaggingClass::Silent
            ) {
                hidden_classified += 1;
            }
        }
    }
    if hidden_total > 0 {
        let share = hidden_classified as f64 / hidden_total as f64;
        assert!(share < 0.005, "hidden classification share {share}");
    }
}

/// §6.4 (random+noise): noise turns silent ASes undecided but leaves
/// taggers nearly untouched; hidden ASes stay unclassified.
#[test]
fn noise_confuses_silent_not_taggers() {
    let w = world(3);
    let clean = Scenario::Random.materialize(&w.graph, &w.paths, 3);
    let noisy = Scenario::RandomNoise.materialize(&w.graph, &w.paths, 3);
    let cfg = InferenceConfig::default();
    let out_clean = InferenceEngine::new(cfg.clone()).run(&clean.tuples);
    let out_noisy = InferenceEngine::new(cfg).run(&noisy.tuples);

    let count =
        |outcome: &InferenceOutcome, ds: &GroundTruthDataset, tagger: bool, class: TaggingClass| {
            ds.roles
                .iter()
                .filter(|(asn, role)| {
                    role.is_tagger() == tagger
                        && !role.is_selective()
                        && !ds.visibility.tagging_hidden(*asn)
                        && outcome.class_of(*asn).tagging == class
                })
                .count() as f64
        };

    // Silent ASes: undecided share grows dramatically under noise.
    let silent_undecided_clean = count(&out_clean, &clean, false, TaggingClass::Undecided);
    let silent_undecided_noisy = count(&out_noisy, &noisy, false, TaggingClass::Undecided);
    assert!(
        silent_undecided_noisy > silent_undecided_clean + 5.0,
        "noise must push silent ASes to undecided ({silent_undecided_clean} -> {silent_undecided_noisy})"
    );

    // Taggers: correct inferences barely move (paper: 22,149 -> 21,625).
    let taggers_clean = count(&out_clean, &clean, true, TaggingClass::Tagger);
    let taggers_noisy = count(&out_noisy, &noisy, true, TaggingClass::Tagger);
    assert!(
        taggers_noisy > taggers_clean * 0.9,
        "taggers must survive noise ({taggers_clean} -> {taggers_noisy})"
    );
}

/// §6.3 (selective): recall collapses with selective tagging while
/// precision stays useful; random-pp is at least as hard as random-p.
#[test]
fn selective_tagging_degrades_recall_not_precision() {
    let w = world(4);
    let cfg = InferenceConfig::default();
    let mut recalls = Vec::new();
    for scenario in [Scenario::Random, Scenario::RandomP, Scenario::RandomPp] {
        let ds = scenario.materialize(&w.graph, &w.paths, 4);
        let outcome = InferenceEngine::new(cfg.clone()).run(&ds.tuples);
        let pr = precision_recall(&outcome, &truth_map(&ds));
        recalls.push((scenario.name(), pr));
    }
    let random = recalls[0].1;
    let p = recalls[1].1;
    let pp = recalls[2].1;
    assert!(
        p.tagging_recall < random.tagging_recall * 0.8,
        "random-p recall must collapse"
    );
    assert!(
        pp.tagging_recall <= p.tagging_recall * 1.05,
        "random-pp at least as hard"
    );
    assert!(p.tagging_precision > 0.6 && pp.tagging_precision > 0.6);
    assert!(
        p.forwarding_precision > 0.85,
        "forwarding precision stays high (paper: 0.97)"
    );
}

/// §7.3 / Fig. 6: taggers live in large-cone ASes, silent at the edge,
/// `none` almost entirely leaves.
#[test]
fn classes_skew_by_cone_size() {
    let w = world(5);
    let roles = bgp_eval::world::realistic_roles(&w.graph, &w.cones, 5);
    let tuples = Propagator::new(&w.graph, &roles).tuples(&w.paths);
    let fig = bgp_eval::fig6::run(&tuples, &w.cones);
    let tagger = &fig.tagging[0];
    let silent = &fig.tagging[1];
    let none = &fig.tagging[3];
    assert!(!tagger.is_empty());
    assert!(tagger.proportion_le(1) < silent.proportion_le(1));
    assert!(none.proportion_le(1) > 0.7);
}

/// §7.4 / Table 4: the PEERING-style injection never contradicts the
/// ground truth, and contradicts the inference only rarely.
#[test]
fn peering_validation_consistency() {
    let w = world(6);
    let roles = bgp_eval::world::realistic_roles(&w.graph, &w.cones, 6);
    let exp = PeeringExperiment::run(&w.graph, &roles, 8, 6);
    for obs in &exp.observations {
        let has_cleaner = exp.path_has_cleaner(&roles, &obs.path);
        assert_eq!(obs.our_communities_present, !has_cleaner);
    }
}

/// §5.7: the column-based algorithm abstains where the row-based baseline
/// guesses — quantified: row-based decides for hidden ASes, column-based
/// does not.
#[test]
fn column_vs_row_on_hidden_behavior() {
    let w = world(7);
    let ds = Scenario::Random.materialize(&w.graph, &w.paths, 7);
    let column = InferenceEngine::new(InferenceConfig::default()).run(&ds.tuples);
    let row = run_row_based(&ds.tuples, Thresholds::default());

    let (mut row_decides_hidden, mut col_decides_hidden, mut hidden) = (0u32, 0u32, 0u32);
    for (asn, _) in ds.roles.iter() {
        if !ds.visibility.tagging_hidden(asn) {
            continue;
        }
        hidden += 1;
        if matches!(
            row.class_of(asn).tagging,
            TaggingClass::Tagger | TaggingClass::Silent
        ) {
            row_decides_hidden += 1;
        }
        if matches!(
            column.class_of(asn).tagging,
            TaggingClass::Tagger | TaggingClass::Silent
        ) {
            col_decides_hidden += 1;
        }
    }
    assert!(hidden > 0, "world has no hidden ASes — test is vacuous");
    assert_eq!(
        col_decides_hidden, 0,
        "column-based must abstain on hidden ASes"
    );
    assert!(
        row_decides_hidden as f64 > hidden as f64 * 0.5,
        "row-based should (wrongly) decide most hidden ASes ({row_decides_hidden}/{hidden})"
    );
}

/// §5.6: counting dies out at moderate path indices (the paper observes
/// ~7 on real data with max path length 19).
#[test]
fn counting_depth_is_bounded() {
    let w = world(8);
    let ds = Scenario::Random.materialize(&w.graph, &w.paths, 8);
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&ds.tuples);
    let max_len = ds.tuples.iter().map(|t| t.path.len()).max().unwrap();
    assert!(outcome.deepest_active_index >= 1);
    assert!(outcome.deepest_active_index <= max_len);
}
