//! End-to-end behavior of the selective-forwarding extension: an AS that
//! forwards toward collectors/customers but cleans toward peers/providers
//! is the §5.4 worst case for a passive observer — from the collector's
//! vantage it looks like a clean `forward`, while the rest of the Internet
//! sees a cleaner. These tests pin down exactly what the algorithm can and
//! cannot see, which is the honest framing the paper gives for selective
//! behavior in general.

use bgp_community_usage::prelude::*;

/// Build a world and flip a slice of forwards into selective forwarders
/// that clean toward providers (and peers) but forward down/out.
fn selective_world(seed: u64, policy: SelectivePolicy) -> (AsGraph, RoleAssignment, Vec<AsPath>) {
    let mut cfg = TopologyConfig::small();
    cfg.transit = 40;
    cfg.edge = 150;
    cfg.collector_peers = 24;
    let g = cfg.seed(seed).build();
    let paths = PathSubstrate::generate(&g, 4).paths;
    let mut roles = Scenario::Random.assign_roles(&g, seed);
    // Every 5th forward AS becomes a selective forwarder.
    let mut i = 0;
    for asn in g.asns().collect::<Vec<_>>() {
        let role = roles.role(asn);
        if role.is_forward() {
            i += 1;
            if i % 5 == 0 {
                roles.set(
                    asn,
                    Role {
                        tagging: role.tagging,
                        forwarding: ForwardingBehavior::SelectiveForward(policy),
                    },
                );
            }
        }
    }
    (g, roles, paths)
}

#[test]
fn propagation_is_edge_aware() {
    let (g, roles, paths) = selective_world(3, SelectivePolicy::NoProvider);
    let prop = Propagator::new(&g, &roles);
    // Model invariant still holds edge-aware: a community never survives a
    // hop where the sender cleans toward that receiver.
    for p in paths.iter().take(5_000) {
        let out = prop.output(p);
        let asns = p.asns();
        for (i, &a) in asns.iter().enumerate() {
            // If any AS strictly upstream cleans on its sending edge, a's
            // tag cannot appear.
            let blocked = (0..i).any(|j| {
                let receiver = if j == 0 { None } else { Some(asns[j - 1]) };
                !prop.forwards_on_edge(asns[j], receiver)
            });
            if blocked {
                assert!(!out.contains_upper(a), "tag of {a} leaked on {p}");
            }
        }
    }
}

#[test]
fn collector_facing_forwarding_is_what_gets_classified() {
    // With NoProvider selective forwarding, the cleaning happens on
    // provider edges (deep in paths), while collector edges forward. The
    // passive algorithm can only see the collector-facing behavior:
    // selective forwarders at peer positions classify as forward, and no
    // crash/misclassification storm occurs elsewhere.
    let (g, roles, paths) = selective_world(7, SelectivePolicy::NoProvider);
    let prop = Propagator::new(&g, &roles);
    let tuples = prop.tuples(&paths);
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&tuples);

    let mut sel_peers_forward = 0u32;
    let mut sel_peers_cleaner = 0u32;
    for &peer in &g.collector_peers() {
        if roles.role(peer).is_selective_forward() {
            match outcome.class_of(peer).forwarding {
                ForwardingClass::Forward => sel_peers_forward += 1,
                ForwardingClass::Cleaner => sel_peers_cleaner += 1,
                _ => {}
            }
        }
    }
    // Collector sessions forward under NoProvider, so any decided
    // selective peer must be seen as forward — never as cleaner.
    assert_eq!(
        sel_peers_cleaner, 0,
        "collector-facing forwarding misread as cleaning"
    );
    if sel_peers_forward == 0 {
        // Seed landed without decided selective peers; the invariant above
        // (no cleaner classification) is still the meaningful assertion.
        eprintln!("note: no selective peer received a forwarding decision at this scale");
    }
}

#[test]
fn consistent_ases_unharmed_by_selective_neighbors() {
    // The presence of selective forwarders must not create
    // misclassifications of consistent ASes (it may reduce coverage).
    let (g, roles, paths) = selective_world(11, SelectivePolicy::NoProviderNoPeer);
    let prop = Propagator::new(&g, &roles);
    let tuples = prop.tuples(&paths);
    let outcome = InferenceEngine::new(InferenceConfig::default()).run(&tuples);

    for (asn, role) in roles.iter() {
        if role.is_selective() || role.is_selective_forward() {
            continue;
        }
        match outcome.class_of(asn).tagging {
            TaggingClass::Tagger => {
                assert!(role.is_tagger(), "{asn}: silent misread as tagger")
            }
            TaggingClass::Silent => {
                assert!(!role.is_tagger(), "{asn}: tagger misread as silent")
            }
            _ => {}
        }
    }
}
