//! Parity and epoch-semantics guarantees of the `bgp-stream` pipeline:
//! streaming must produce *identical* `(Asn, Class)` output (and raw
//! counters) to the batch `InferenceEngine::run` on the same input, for
//! any shard count and any epoch slicing; snapshots version monotonically
//! and their flip streams compose back into the final classification.

use bgp_community_usage::prelude::*;
use std::collections::HashMap;

fn world(seed: u64) -> GroundTruthDataset {
    let mut cfg = TopologyConfig::small();
    cfg.transit = 30;
    cfg.edge = 100;
    cfg.collector_peers = 14;
    let g = cfg.seed(seed).build();
    let paths = PathSubstrate::generate(&g, 3).paths;
    Scenario::Random.materialize(&g, &paths, seed)
}

fn batch_outcome(tuples: &[PathCommTuple]) -> InferenceOutcome {
    InferenceEngine::new(InferenceConfig {
        threads: 1,
        ..Default::default()
    })
    .run(tuples)
}

fn stream_over(tuples: &[PathCommTuple], shards: usize, epoch: EpochPolicy) -> StreamOutcome {
    let mut pipe = StreamPipeline::new(StreamConfig {
        shards,
        epoch,
        dedup: false, // mirror the batch engine's raw-slice semantics
        ..Default::default()
    });
    for (i, t) in tuples.iter().enumerate() {
        pipe.push(StreamEvent::new(i as u64, t.clone()));
    }
    pipe.finish()
}

fn assert_counter_parity(batch: &InferenceOutcome, stream: &StreamOutcome, ctx: &str) {
    // Classes AND the raw counters behind them must match exactly.
    assert_eq!(batch.classes(), stream.classes(), "{ctx}: classes diverged");
    let mut got: Vec<(Asn, AsCounters)> = stream.outcome.counters.iter().collect();
    let mut want: Vec<(Asn, AsCounters)> = batch.counters.iter().collect();
    got.sort_by_key(|&(a, _)| a);
    want.sort_by_key(|&(a, _)| a);
    assert_eq!(got, want, "{ctx}: counters diverged");
    assert_eq!(
        batch.deepest_active_index, stream.outcome.deepest_active_index,
        "{ctx}: deepest active index diverged"
    );
}

#[test]
fn compiled_shards_match_the_reference_oracle() {
    // The shards now count over the compiled columnar store
    // (`bgp_infer::compiled`); pin them not just against the (also
    // compiled) batch engine but against the uncompiled Listing-1
    // oracle `run_reference`, for raw and deduplicated feeds.
    let ds = world(37);
    let oracle = InferenceEngine::new(InferenceConfig {
        threads: 1,
        ..Default::default()
    })
    .run_reference(&ds.tuples);
    for shards in [1usize, 3] {
        let out = stream_over(&ds.tuples, shards, EpochPolicy::every_events(250));
        assert_counter_parity(&oracle, &out, &format!("compiled store, {shards} shards"));
    }

    // Dedup mode: the oracle runs over the unique tuple set.
    let unique: TupleSet = ds.tuples.iter().cloned().collect();
    let oracle = InferenceEngine::new(InferenceConfig {
        threads: 1,
        ..Default::default()
    })
    .run_reference(&unique.to_vec());
    let mut pipe = StreamPipeline::new(StreamConfig {
        shards: 4,
        epoch: EpochPolicy::every_events(300),
        dedup: true,
        ..Default::default()
    });
    for (i, t) in ds
        .tuples
        .iter()
        .chain(ds.tuples.iter().take(200))
        .enumerate()
    {
        pipe.push(StreamEvent::new(i as u64, t.clone()));
    }
    let out = pipe.finish();
    assert_counter_parity(&oracle, &out, "compiled store, dedup feed");
}

#[test]
fn stream_matches_batch_for_every_shard_count() {
    let ds = world(11);
    let batch = batch_outcome(&ds.tuples);
    for shards in [1usize, 2, 4, 8] {
        let out = stream_over(&ds.tuples, shards, EpochPolicy::manual());
        assert_counter_parity(&batch, &out, &format!("{shards} shards"));
    }
}

#[test]
fn epoch_slicing_never_changes_the_final_answer() {
    let ds = world(13);
    let batch = batch_outcome(&ds.tuples);
    for epoch in [
        EpochPolicy::manual(),
        EpochPolicy::every_events(1),
        EpochPolicy::every_events(97),
        EpochPolicy::either(64, 3),
    ] {
        let out = stream_over(&ds.tuples, 4, epoch);
        assert_counter_parity(&batch, &out, &format!("{epoch:?}"));
    }
}

#[test]
fn shard_count_cannot_change_snapshots() {
    // Determinism across shard counts must hold per-epoch, not just at
    // the end: same events, same epoch policy => identical snapshot
    // classes and flips for 1, 2 and 4 shards.
    let ds = world(17);
    let policy = EpochPolicy::every_events(200);
    let runs: Vec<StreamOutcome> = [1usize, 2, 4]
        .iter()
        .map(|&s| stream_over(&ds.tuples, s, policy))
        .collect();
    for other in &runs[1..] {
        assert_eq!(runs[0].epochs(), other.epochs());
        for (a, b) in runs[0].snapshots.iter().zip(&other.snapshots) {
            assert_eq!(a.classes, b.classes, "epoch {} classes", a.epoch);
            let fa: Vec<(Asn, Class, Class)> =
                a.flips.iter().map(|f| (f.asn, f.from, f.to)).collect();
            let fb: Vec<(Asn, Class, Class)> =
                b.flips.iter().map(|f| (f.asn, f.from, f.to)).collect();
            assert_eq!(fa, fb, "epoch {} flips", a.epoch);
        }
    }
}

#[test]
fn snapshots_version_monotonically_and_flips_compose() {
    let ds = world(19);
    let out = stream_over(&ds.tuples, 2, EpochPolicy::every_events(150));
    assert!(
        out.epochs() >= 2,
        "want multiple epochs, got {}",
        out.epochs()
    );

    // Versions are strictly increasing from 1.
    for (i, s) in out.snapshots.iter().enumerate() {
        assert_eq!(s.epoch, i as u64);
        assert_eq!(s.version, i as u64 + 1);
    }

    // Replaying every flip stream over an empty map reproduces exactly
    // the final classification (and each flip's `from` matches the state
    // it was applied to — the diff is consistent, not merely eventual).
    let mut state: HashMap<Asn, Class> = HashMap::new();
    for s in &out.snapshots {
        for f in s.flips.iter() {
            let prev = state.get(&f.asn).copied().unwrap_or(Class::NONE);
            assert_eq!(prev, f.from, "flip for {} disagrees with history", f.asn);
            state.insert(f.asn, f.to);
        }
    }
    let mut replayed: Vec<(Asn, Class)> = state
        .into_iter()
        .filter(|&(_, c)| c != Class::NONE)
        .collect();
    replayed.sort_by_key(|&(a, _)| a);
    let finals: Vec<(Asn, Class)> = out
        .classes()
        .into_iter()
        .filter(|&(_, c)| c != Class::NONE)
        .collect();
    assert_eq!(replayed, finals);
}

#[test]
fn mrt_day_stream_matches_batch_ingest() {
    // Full-system parity: generate a collector day, consume it once via
    // the batch path (ingest_day -> TupleSet -> engine) and once via the
    // streaming path (DaySource per-bin chunks -> sharded pipeline).
    let mut cfg = TopologyConfig::small();
    cfg.transit = 25;
    cfg.edge = 80;
    cfg.collector_peers = 10;
    let g = cfg.seed(23).build();
    let roles = Scenario::Random.assign_roles(&g, 23);
    let paths = PathSubstrate::generate(&g, 3).paths;
    let day = ArchiveBuilder::new(&g, &roles).build_day(&CollectorProject::ripe(), &paths, 23);

    let mut set = TupleSet::new();
    ingest_day(&day, &mut set).expect("archive parses");
    let batch = batch_outcome(&set.to_vec());

    let mut pipe = StreamPipeline::new(StreamConfig {
        shards: 4,
        epoch: EpochPolicy::every_events(500),
        dedup: true, // the batch path dedups through TupleSet
        ..Default::default()
    });
    let mut source = DaySource::new(&day);
    pipe.drive(&mut source, 256).expect("stream parses");
    let out = pipe.finish();

    assert_eq!(out.unique_tuples, set.len(), "dedup diverged from TupleSet");
    assert_counter_parity(&batch, &out, "collector day");
}

#[test]
fn reclassify_matches_batch_reclassify() {
    let ds = world(29);
    let batch = batch_outcome(&ds.tuples);
    let out = stream_over(&ds.tuples, 2, EpochPolicy::every_events(100));
    for th in [0.5, 0.75, 0.9] {
        assert_eq!(
            batch.reclassify(Thresholds::uniform(th)),
            out.reclassify(Thresholds::uniform(th)),
            "reclassify at {th}"
        );
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any interleaving of interner pushes across threads yields a
        /// consistent dense-id ↔ ASN bijection: every observed id
        /// resolves back to the ASN that produced it, re-interning is
        /// stable, and the id space is exactly `0..len`.
        #[test]
        fn shared_interner_concurrent_pushes_are_consistent(
            seed in 0u64..200,
            threads in 2usize..5,
        ) {
            let interner = Arc::new(SharedInterner::new());
            // Overlapping ASN sets per thread, offset so every pair of
            // threads races on part of its range.
            let observed: Vec<Vec<(u32, u32)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let interner = Arc::clone(&interner);
                        s.spawn(move || {
                            let mut seen = Vec::new();
                            for i in 0..400u32 {
                                // A mix of 16-bit and 32-bit ASNs, with
                                // cross-thread overlap.
                                let a = 10 + ((seed as u32).wrapping_mul(31)
                                    + i * (t as u32 + 1)) % 600;
                                let asn = if a.is_multiple_of(13) { a + 300_000 } else { a };
                                let id = interner.intern(Asn(asn));
                                seen.push((asn, id));
                            }
                            seen
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let n = interner.len();
            let mut id_seen = vec![false; n];
            for pairs in &observed {
                for &(asn, id) in pairs {
                    // Every observation resolves back to its ASN...
                    prop_assert_eq!(interner.resolve(id), Asn(asn));
                    // ...and re-interning is stable after the races.
                    prop_assert_eq!(interner.intern(Asn(asn)), id);
                    id_seen[id as usize] = true;
                }
            }
            // Ids are dense: every assigned id was observed by someone.
            prop_assert!(id_seen.iter().all(|&b| b), "gap in the dense id space");
            // The reverse map agrees with the forward map everywhere.
            for id in 0..n as u32 {
                prop_assert_eq!(interner.get(interner.resolve(id)), Some(id));
            }
        }

        /// The dense-id stream path — shared interner, columnar shards,
        /// incremental or full seals, any shard count and epoch slicing —
        /// is byte-identical to the uncompiled batch oracle: classes AND
        /// raw counters.
        #[test]
        fn stream_matrix_matches_batch_oracle(
            seed in 0u64..500,
            shards in 1usize..5,
            every in (0usize..4).prop_map(|i| [1u64, 97, 250, 100_000][i]),
            incremental in any::<bool>(),
            dedup in any::<bool>(),
        ) {
            let ds = world(seed);
            let tuples: Vec<PathCommTuple> = if dedup {
                // Feed duplicates; the oracle runs on the unique set.
                ds.tuples
                    .iter()
                    .chain(ds.tuples.iter().take(ds.tuples.len() / 3))
                    .cloned()
                    .collect()
            } else {
                ds.tuples.clone()
            };
            let oracle_input: Vec<PathCommTuple> = if dedup {
                let set: TupleSet = tuples.iter().cloned().collect();
                set.to_vec()
            } else {
                tuples.clone()
            };
            let oracle = InferenceEngine::new(InferenceConfig {
                threads: 1,
                ..Default::default()
            })
            .run_reference(&oracle_input);

            let mut pipe = StreamPipeline::new(StreamConfig {
                shards,
                epoch: EpochPolicy::every_events(every),
                dedup,
                incremental_seal: incremental,
                ..Default::default()
            });
            for (i, t) in tuples.iter().enumerate() {
                pipe.push(StreamEvent::new(i as u64, t.clone()));
            }
            let out = pipe.finish();
            assert_counter_parity(
                &oracle,
                &out,
                &format!("seed={seed} shards={shards} every={every} \
                          incremental={incremental} dedup={dedup}"),
            );
        }
    }
}

#[test]
fn duplicate_heavy_feed_dedups_to_batch_answer() {
    // A live feed re-announces the same routes over and over; with dedup
    // on, the stream's answer equals the batch answer on the unique set.
    let ds = world(31);
    let feed = UpdateFeed::new(&ds, 31, 3);
    let unique: TupleSet = ds.tuples.iter().cloned().collect();
    let batch = batch_outcome(&unique.to_vec());

    let mut pipe = StreamPipeline::new(StreamConfig {
        shards: 4,
        epoch: EpochPolicy::every_span(7_200), // two-hour epochs
        dedup: true,
        ..Default::default()
    });
    let mut source = IterSource::new(feed.map(|(ts, t)| StreamEvent::new(ts, t)));
    pipe.drive(&mut source, 512).expect("feed streams");
    let out = pipe.finish();

    assert!(out.duplicates > 0, "feed should contain re-announcements");
    assert_eq!(out.unique_tuples, unique.len());
    assert_counter_parity(&batch, &out, "duplicate-heavy feed");
    assert!(out.epochs() > 1, "day should span multiple two-hour epochs");
}
